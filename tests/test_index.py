"""Tests for the data index."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import CLOUD_SITE, LOCAL_SITE, DatasetSpec, PlacementSpec
from repro.core.index import DataIndex, FileEntry, build_index
from repro.errors import IndexError_

from conftest import small_spec


def test_build_index_prefix_placement():
    spec = small_spec(record_bytes=4, files=8)
    index = build_index(spec, PlacementSpec(local_fraction=0.5))
    assert index.num_files == 8
    assert len(index.files_at(LOCAL_SITE)) == 4
    assert len(index.files_at(CLOUD_SITE)) == 4
    # Prefix: local files come first.
    assert all(e.site == LOCAL_SITE for e in index.files[:4])


def test_jobs_enumerate_every_chunk_once():
    spec = small_spec(record_bytes=8, files=3, chunks_per_file=5)
    index = build_index(spec, PlacementSpec(local_fraction=1.0))
    jobs = index.jobs()
    assert len(jobs) == 15
    assert [j.job_id for j in jobs] == list(range(15))
    # Consecutive ids within one file have consecutive chunk indices/offsets.
    for a, b in zip(jobs, jobs[1:]):
        if a.file_id == b.file_id:
            assert b.chunk_index == a.chunk_index + 1
            assert b.offset == a.offset + a.nbytes


def test_index_roundtrip_json():
    spec = small_spec(record_bytes=4)
    index = build_index(spec, PlacementSpec(local_fraction=0.25))
    restored = DataIndex.from_json(index.to_json())
    assert restored.num_files == index.num_files
    assert restored.total_bytes == index.total_bytes
    assert [e.site for e in restored.files] == [e.site for e in index.files]


def test_index_save_load(tmp_path):
    spec = small_spec(record_bytes=4)
    index = build_index(spec, PlacementSpec(local_fraction=0.5))
    path = tmp_path / "index.json"
    index.save(path)
    assert DataIndex.load(path).num_chunks == index.num_chunks


def test_malformed_json_rejected():
    with pytest.raises(IndexError_):
        DataIndex.from_json("{not json")
    with pytest.raises(IndexError_):
        DataIndex.from_json("[]")
    with pytest.raises(IndexError_):
        DataIndex.from_json('{"format_version": 99, "files": []}')
    with pytest.raises(IndexError_):
        DataIndex.from_json(
            '{"format_version": 1, "files": [{"file_id": "x"}]}'
        )


def test_duplicate_file_id_rejected():
    entry = FileEntry(file_id=0, site=LOCAL_SITE, path="a", nbytes=100,
                      chunk_bytes=50, units_per_chunk=10)
    with pytest.raises(IndexError_):
        DataIndex(files=[entry, entry])


def test_ragged_file_rejected():
    with pytest.raises(IndexError_):
        FileEntry(file_id=0, site=LOCAL_SITE, path="a", nbytes=100,
                  chunk_bytes=33, units_per_chunk=10)


def test_entry_lookup():
    spec = small_spec(record_bytes=4, files=2)
    index = build_index(spec, PlacementSpec(local_fraction=0.0))
    assert index.entry(1).file_id == 1
    with pytest.raises(IndexError_):
        index.entry(99)


@given(
    files=st.integers(1, 12),
    chunks=st.integers(1, 8),
    fraction=st.floats(0.0, 1.0),
)
def test_index_job_count_invariant(files, chunks, fraction):
    spec = DatasetSpec(
        total_bytes=files * chunks * 64,
        num_files=files,
        chunk_bytes=64,
        record_bytes=8,
    )
    index = build_index(spec, PlacementSpec(local_fraction=fraction))
    jobs = index.jobs()
    assert len(jobs) == spec.num_chunks
    assert len({j.job_id for j in jobs}) == len(jobs)
    by_site = {LOCAL_SITE: 0, CLOUD_SITE: 0}
    for entry in index.files:
        by_site[entry.site] += 1
    assert by_site[LOCAL_SITE] == PlacementSpec(fraction).local_files(files)
