"""End-to-end runtime integration: distributed result == serial oracle.

Every bundled application is built at small scale, materialized into the
two-site storage layer, run through the full head/master/slave middleware
in a hybrid configuration, and compared against both the Generalized
Reduction serial runner and the independent NumPy reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import make_bundle
from repro.baselines.serial import (
    histogram_reference,
    kmeans_reference,
    knn_reference,
    pagerank_reference,
    wordcount_reference,
)
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.api import run_serial
from repro.data.dataset import DatasetReader, build_dataset
from repro.runtime.centralized import run_centralized
from repro.runtime.driver import CloudBurstingRuntime, run_iterative
from repro.storage.objectstore import ObjectStore

TOTAL_UNITS = 2048
FILES = 4
CHUNKS_PER_FILE = 4
UNITS_PER_CHUNK = TOTAL_UNITS // (FILES * CHUNKS_PER_FILE)


def materialize(app_key, local_fraction=0.5, **bundle_params):
    bundle = make_bundle(app_key, TOTAL_UNITS, **bundle_params)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=TOTAL_UNITS * rb,
        num_files=FILES,
        chunk_bytes=UNITS_PER_CHUNK * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(local_fraction), bundle.schema, bundle.block_fn, stores
    )
    return bundle, spec, index, stores


def run_hybrid(bundle, index, stores, local_cores=2, cloud_cores=2):
    runtime = CloudBurstingRuntime(
        bundle.app,
        index,
        stores,
        ComputeSpec(local_cores=local_cores, cloud_cores=cloud_cores),
        tuning=MiddlewareTuning(units_per_group=100),
    )
    return runtime.run()


def all_units(bundle, index, stores):
    reader = DatasetReader(index, stores)
    decoded = [bundle.app.decode_chunk(raw) for raw in reader.read_all_chunks()]
    return np.concatenate(decoded)


def test_knn_hybrid_matches_references():
    bundle, spec, index, stores = materialize("knn", dims=3, k=9)
    result = run_hybrid(bundle, index, stores)
    serial = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    assert result.value == serial
    units = all_units(bundle, index, stores)
    reference = knn_reference(units["id"], units["coords"], bundle.app.query, 9)
    assert result.value == reference
    assert result.telemetry.total_jobs == spec.num_chunks


def test_kmeans_hybrid_matches_references():
    bundle, spec, index, stores = materialize("kmeans", dims=2, k=5)
    result = run_hybrid(bundle, index, stores)
    units = all_units(bundle, index, stores)
    reference = kmeans_reference(units, bundle.app.centroids)
    np.testing.assert_allclose(result.value, reference, atol=1e-4)


def test_pagerank_hybrid_matches_references():
    bundle, spec, index, stores = materialize("pagerank")
    result = run_hybrid(bundle, index, stores)
    units = all_units(bundle, index, stores)
    reference = pagerank_reference(units, bundle.app.n_pages)
    np.testing.assert_allclose(result.value, reference, rtol=1e-9)
    assert result.value.sum() == pytest.approx(1.0)


def test_wordcount_hybrid_matches_references():
    bundle, spec, index, stores = materialize("wordcount", vocabulary=64)
    result = run_hybrid(bundle, index, stores)
    units = all_units(bundle, index, stores)
    assert result.value == wordcount_reference(units)
    assert sum(result.value.values()) == TOTAL_UNITS


def test_histogram_hybrid_matches_references():
    bundle, spec, index, stores = materialize("histogram", bins=32)
    result = run_hybrid(bundle, index, stores)
    units = all_units(bundle, index, stores)
    reference = histogram_reference(units, 32, bundle.app.lo, bundle.app.hi)
    np.testing.assert_array_equal(result.value, reference)
    assert result.value.sum() == TOTAL_UNITS


def test_skewed_placement_forces_stealing():
    bundle, spec, index, stores = materialize("knn", local_fraction=0.25, dims=3, k=4)
    result = run_hybrid(bundle, index, stores, local_cores=3, cloud_cores=1)
    # 3 local cores but only 1/4 of the data local: the local cluster must
    # fetch remote chunks; result stays correct.
    serial = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    assert result.value == serial
    assert result.telemetry.total_jobs == spec.num_chunks


def test_centralized_baseline_matches_hybrid():
    bundle, spec, index, stores = materialize("histogram", bins=16)
    hybrid = run_hybrid(bundle, index, stores)
    # Rebuild all-local and run the centralized baseline helper.
    bundle2 = make_bundle("histogram", TOTAL_UNITS, bins=16)
    store = ObjectStore()
    build_dataset(spec, PlacementSpec(1.0), bundle2.schema, bundle2.block_fn,
                  {LOCAL_SITE: store})
    central = run_centralized(bundle2.app, spec, store, cores=2)
    np.testing.assert_array_equal(hybrid.value, central.value)


def test_single_core_single_site_runtime():
    bundle, spec, index, stores = materialize("wordcount", local_fraction=1.0,
                                              vocabulary=16)
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=1, cloud_cores=0)
    )
    result = runtime.run()
    assert sum(result.value.values()) == TOTAL_UNITS
    assert result.telemetry.total_stolen == 0


def test_iterative_kmeans_converges():
    bundle, spec, index, stores = materialize("kmeans", dims=2, k=4)
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2)
    )
    result, passes = run_iterative(
        runtime, bundle.app.update, iterations=30, tolerance=1e-3
    )
    assert passes < 30  # converged before the cap
    # Fixed point: one more iteration barely moves the centroids.
    units = all_units(bundle, index, stores)
    again = kmeans_reference(units, np.asarray(result))
    np.testing.assert_allclose(again, result, atol=5e-3)


def test_iterative_pagerank_converges_to_stationary():
    bundle, spec, index, stores = materialize("pagerank")
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2)
    )
    result, passes = run_iterative(
        runtime, bundle.app.update, iterations=60, tolerance=1e-10
    )
    units = all_units(bundle, index, stores)
    reference = pagerank_reference(units, bundle.app.n_pages, iterations=passes)
    assert result.sum() == pytest.approx(1.0)
    np.testing.assert_allclose(result, reference, atol=1e-8)


def test_telemetry_structure():
    bundle, spec, index, stores = materialize("knn", dims=3, k=4)
    result = run_hybrid(bundle, index, stores)
    assert set(result.telemetry.clusters) == {"local-cluster", "cloud-cluster"}
    for cluster in result.telemetry.clusters.values():
        assert cluster.slaves == 2
        assert cluster.jobs >= 0
        assert cluster.mean_processing >= 0
        assert cluster.mean_retrieval >= 0
    assert result.telemetry.wall_seconds > 0
    assert result.global_reduction_seconds >= 0
