"""Tests for record schemas."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.records import (
    EDGE_SCHEMA,
    TOKEN_SCHEMA,
    VALUE_SCHEMA,
    idpoint_schema,
    point_schema,
)
from repro.errors import DataFormatError


def test_point_schema_roundtrip():
    schema = point_schema(3)
    assert schema.record_bytes == 12
    pts = np.arange(12, dtype=np.float32).reshape(4, 3)
    decoded = schema.decode(schema.encode(pts))
    np.testing.assert_array_equal(decoded, pts)
    assert schema.units_in(48) == 4


def test_idpoint_schema_roundtrip():
    schema = idpoint_schema(2)
    assert schema.record_bytes == 8 + 8
    arr = np.zeros(3, dtype=schema.dtype)
    arr["id"] = [7, 8, 9]
    arr["coords"] = np.ones((3, 2), dtype=np.float32)
    decoded = schema.decode(schema.encode(arr))
    np.testing.assert_array_equal(decoded["id"], [7, 8, 9])
    np.testing.assert_array_equal(decoded["coords"], arr["coords"])


def test_edge_schema():
    edges = np.array([[0, 1], [2, 3]], dtype=np.int32)
    decoded = EDGE_SCHEMA.decode(EDGE_SCHEMA.encode(edges))
    np.testing.assert_array_equal(decoded, edges)
    assert EDGE_SCHEMA.record_bytes == 8


def test_token_and_value_schemas():
    assert TOKEN_SCHEMA.record_bytes == 4
    assert VALUE_SCHEMA.record_bytes == 8


def test_decode_rejects_ragged():
    schema = point_schema(3)
    with pytest.raises(DataFormatError):
        schema.decode(b"\x00" * 13)
    with pytest.raises(DataFormatError):
        schema.units_in(13)


def test_encode_rejects_wrong_shape():
    schema = point_schema(3)
    with pytest.raises(DataFormatError):
        schema.encode(np.zeros((4, 2), dtype=np.float32))


def test_bad_dims_rejected():
    with pytest.raises(DataFormatError):
        point_schema(0)
    with pytest.raises(DataFormatError):
        idpoint_schema(-1)


@given(
    st.integers(1, 6),
    st.lists(st.floats(-1e4, 1e4, allow_nan=False, width=32), min_size=0,
             max_size=30),
)
def test_point_roundtrip_property(dims, flat):
    n = len(flat) // dims
    pts = np.asarray(flat[: n * dims], dtype=np.float32).reshape(n, dims)
    schema = point_schema(dims)
    decoded = schema.decode(schema.encode(pts))
    np.testing.assert_array_equal(decoded, pts)
