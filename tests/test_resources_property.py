"""Property tests for the simulated Resource/Store primitives under
randomized workloads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store


@settings(deadline=None, max_examples=50)
@given(
    capacity=st.integers(1, 8),
    tasks=st.lists(
        st.tuples(st.floats(0.0, 5.0), st.floats(0.01, 3.0)),  # (start, hold)
        min_size=1,
        max_size=30,
    ),
)
def test_resource_capacity_never_exceeded(capacity, tasks):
    env = Environment()
    res = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]
    completed = [0]

    def worker(start, hold):
        if start > 0:
            yield env.timeout(start)
        req = res.request()
        yield req
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield env.timeout(hold)
        active[0] -= 1
        res.release(req)
        completed[0] += 1

    for start, hold in tasks:
        env.process(worker(start, hold))
    env.run()
    assert peak[0] <= capacity
    assert completed[0] == len(tasks)
    assert res.in_use == 0
    assert res.queue_length == 0
    assert res.grants == len(tasks)


@settings(deadline=None, max_examples=50)
@given(
    puts=st.lists(st.tuples(st.floats(0.0, 5.0), st.integers(0, 99)),
                  min_size=1, max_size=25),
    consumers=st.integers(1, 5),
)
def test_store_delivers_every_item_exactly_once(puts, consumers):
    env = Environment()
    store = Store(env)
    received: list[int] = []
    per_consumer = len(puts) // consumers
    leftovers = len(puts) - per_consumer * consumers

    def producer():
        for delay, item in puts:
            if delay > 0:
                yield env.timeout(delay)
            store.put(item)

    def consumer(count):
        for _ in range(count):
            item = yield store.get()
            received.append(item)

    env.process(producer())
    for i in range(consumers):
        env.process(consumer(per_consumer + (1 if i < leftovers else 0)))
    env.run()
    assert sorted(received) == sorted(item for _, item in puts)
    assert len(store) == 0
