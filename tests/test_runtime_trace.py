"""Runtime observability: real runs produce valid, exportable traces.

The acceptance bar for the unified observability layer: a real
:class:`CloudBurstingRuntime` run with tracing enabled yields a JSONL
event log and a Perfetto-loadable ``trace_event`` document, and the
shared timeline analyses (`worker_intervals`/`utilization`/`render_gantt`)
accept that log and validate it — paired start/end events, no overlaps —
for at least two applications.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.data.dataset import build_dataset
from repro.errors import RuntimeTimeoutError, WorkerFailure
from repro.obs import (
    EventLog,
    MetricsRegistry,
    read_jsonl,
    render_gantt,
    render_report,
    to_perfetto,
    utilization,
    worker_intervals,
    write_jsonl,
)
from repro.runtime.driver import CloudBurstingRuntime, run_iterative
from repro.runtime.telemetry import RunTelemetry
from repro.storage.objectstore import ObjectStore

TOTAL_UNITS = 1024
FILES = 4
CHUNKS_PER_FILE = 4
UNITS_PER_CHUNK = TOTAL_UNITS // (FILES * CHUNKS_PER_FILE)
NUM_JOBS = FILES * CHUNKS_PER_FILE


def materialize(app_key, local_fraction=0.5, **bundle_params):
    bundle = make_bundle(app_key, TOTAL_UNITS, **bundle_params)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=TOTAL_UNITS * rb,
        num_files=FILES,
        chunk_bytes=UNITS_PER_CHUNK * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(local_fraction), bundle.schema, bundle.block_fn, stores
    )
    return bundle, index, stores


def traced_run(app_key, *, local_fraction=0.5, metrics=None, **bundle_params):
    bundle, index, stores = materialize(
        app_key, local_fraction=local_fraction, **bundle_params
    )
    log = EventLog()
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
        tuning=MiddlewareTuning(units_per_group=100),
        trace=log, metrics=metrics,
    )
    return runtime.run(), log


def assert_valid_trace(log: EventLog, jobs: int = NUM_JOBS) -> None:
    """The acceptance checks: counts, pairing, no overlaps, renderable."""
    assert len(log.of_kind("fetch_start")) == jobs
    assert len(log.of_kind("fetch_end")) == jobs
    assert len(log.of_kind("compute_start")) == jobs
    assert len(log.of_kind("compute_end")) == jobs
    assert len(log.of_kind("job_done")) == jobs
    assert len(log.of_kind("combine_done")) == 2
    assert len(log.of_kind("robj_sent")) == 2
    assert len(log.of_kind("merge_done")) == 2
    makespan = log.makespan()
    assert makespan > 0
    for worker in log.workers():
        intervals = worker_intervals(log, worker)  # raises if unpaired
        for a, b in zip(intervals, intervals[1:]):
            assert a.end <= b.start + 1e-9, "overlapping intervals"
    util = utilization(log, makespan)
    assert set(util) == set(log.workers())
    for parts in util.values():
        total = parts["retrieval"] + parts["processing"] + parts["idle"]
        assert total == pytest.approx(1.0, abs=1e-6)
    chart = render_gantt(log, makespan, width=40)
    assert len(chart.splitlines()) == 1 + len(log.workers())


@pytest.mark.parametrize(
    "app_key,params",
    [("wordcount", {"vocabulary": 64}), ("kmeans", {"dims": 2, "k": 4})],
)
def test_traced_run_validates_and_exports(app_key, params, tmp_path):
    result, log = traced_run(app_key, **params)
    assert result.telemetry.total_jobs == NUM_JOBS
    assert_valid_trace(log)

    # JSONL export round-trips and still validates.
    jsonl = tmp_path / f"{app_key}.jsonl"
    write_jsonl(log, jsonl)
    back = read_jsonl(jsonl)
    assert_valid_trace(back)

    # Perfetto document is loadable JSON with one slice per busy interval.
    doc = to_perfetto(back)
    json.loads(json.dumps(doc))
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    expected = sum(len(worker_intervals(back, w)) for w in back.workers())
    assert len(slices) == expected
    assert all(s["dur"] >= 0 for s in slices)

    # The text report renders from the same stream.
    report = render_report(back)
    assert "mean worker idle fraction" in report


def test_tracing_disabled_result_identical():
    bundle, index, stores = materialize("histogram", bins=16)
    compute = ComputeSpec(local_cores=2, cloud_cores=2)
    plain = CloudBurstingRuntime(bundle.app, index, stores, compute).run()
    traced = CloudBurstingRuntime(
        bundle.app, index, stores, compute, trace=EventLog()
    ).run()
    import numpy as np

    np.testing.assert_array_equal(plain.value, traced.value)
    assert plain.telemetry.metrics is None


def test_skewed_run_emits_steal_and_remote_fetch():
    bundle, index, stores = materialize("wordcount", local_fraction=0.25,
                                        vocabulary=32)
    log = EventLog()
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=3, cloud_cores=1), trace=log,
    )
    runtime.run()
    steals = log.of_kind("steal")
    assert steals, "3 local cores over 1/4-local data must steal"
    assert all(e.cluster for e in steals)
    remote = log.of_kind("remote_fetch")
    assert remote, "stolen jobs cross sites"
    assert all("<-" in e.detail for e in remote)


def test_metrics_snapshot_lands_in_telemetry():
    registry = MetricsRegistry()
    result, log = traced_run("wordcount", metrics=registry, vocabulary=32)
    snap = result.telemetry.metrics
    assert snap is not None
    assert snap["counters"]["jobs_done"] == NUM_JOBS
    assert snap["counters"]["jobs_stolen"] == result.telemetry.total_stolen
    assert snap["gauges"]["workers"] == 4
    fetch = snap["histograms"]["fetch_seconds"]
    compute = snap["histograms"]["compute_seconds"]
    assert fetch["count"] == NUM_JOBS
    assert compute["count"] == NUM_JOBS
    assert fetch["sum"] > 0 and compute["sum"] > 0
    # Histogram totals agree with the stopwatch aggregates.
    stopwatch_retrieval = sum(
        c.mean_retrieval * c.slaves for c in result.telemetry.clusters.values()
    )
    assert fetch["sum"] == pytest.approx(stopwatch_retrieval, rel=1e-6)


def test_iterative_passes_share_one_timeline():
    bundle, index, stores = materialize("kmeans", dims=2, k=3)
    log = EventLog()
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2),
        trace=log,
    )
    run_iterative(runtime, bundle.app.update, iterations=2)
    # Two passes, one continuous (monotone-origin) event stream.
    assert len(log.of_kind("fetch_start")) == 2 * NUM_JOBS
    assert len(log.of_kind("merge_done")) == 4
    for worker in log.workers():
        worker_intervals(log, worker)  # still pairs cleanly across passes


def test_failure_run_emits_slave_failed_and_reexecution():
    bundle, index, stores = materialize("wordcount", vocabulary=32)
    failed = []

    def fault_hook(slave_id, job):
        if slave_id == 0 and not failed:
            failed.append(job)
            raise WorkerFailure("injected")

    log = EventLog()
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2),
        fault_hook=fault_hook, trace=log,
    )
    result = runtime.run()
    assert result.telemetry.slaves_failed == 1
    assert len(log.of_kind("slave_failed")) == 1
    assert len(log.of_kind("job_reexecuted")) == result.telemetry.jobs_reexecuted


def test_join_timeout_names_alive_components():
    bundle, index, stores = materialize("wordcount", vocabulary=16)
    block = threading.Event()  # never set: one slave hangs forever

    def fault_hook(slave_id, job):
        if slave_id == 0:
            block.wait()

    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2),
        fault_hook=fault_hook, join_timeout=0.5,
    )
    with pytest.raises(RuntimeTimeoutError) as info:
        runtime.run()
    message = str(info.value)
    assert "0.5s" in message
    assert "masters still alive" in message and "slaves still alive" in message
    assert "local-cluster" in message  # the hung slave's master is named
    block.set()  # unblock the daemon thread so the interpreter exits cleanly


def test_join_timeout_must_be_positive():
    from repro.errors import ConfigurationError

    bundle, index, stores = materialize("wordcount", vocabulary=16)
    with pytest.raises(ConfigurationError):
        CloudBurstingRuntime(
            bundle.app, index, stores,
            ComputeSpec(local_cores=1, cloud_cores=1),
            join_timeout=0.0,
        )


# -- RunTelemetry serialization (mirrors SimReport's) -----------------------


def test_run_telemetry_round_trip():
    registry = MetricsRegistry()
    result, _ = traced_run("wordcount", metrics=registry, vocabulary=32)
    text = result.telemetry.to_json()
    back = RunTelemetry.from_json(text)
    assert back.wall_seconds == result.telemetry.wall_seconds
    assert back.total_jobs == result.telemetry.total_jobs
    assert back.total_stolen == result.telemetry.total_stolen
    assert set(back.clusters) == set(result.telemetry.clusters)
    assert back.metrics == result.telemetry.metrics
    assert back.to_dict() == result.telemetry.to_dict()


def test_run_telemetry_from_bad_documents():
    from repro.errors import DataFormatError

    with pytest.raises(DataFormatError):
        RunTelemetry.from_json("{not json")
    with pytest.raises(DataFormatError):
        RunTelemetry.from_dict({"clusters": {}})  # no wall_seconds
    with pytest.raises(DataFormatError):
        RunTelemetry.from_dict(
            {"wall_seconds": 1.0, "clusters": {"c": {"bogus": 1}}}
        )
