"""Unit tests for the resilience subsystem.

Covers every policy knob: the fault-spec grammar, injector determinism,
retry/backoff semantics, per-attempt timeouts, hedged requests, the
circuit breaker's open/degrade/close ladder, and the retriever's
integration of all of them.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.clock import FakeClock
from repro.errors import (
    ConfigurationError,
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.resilience import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    ResilienceStats,
    RetryBudgetExceeded,
    RetryPolicy,
    retry_call,
)
from repro.storage.objectstore import ObjectStore
from repro.storage.retrieval import ChunkRetriever


# -- FaultSpec grammar ------------------------------------------------------


def test_fault_spec_parse_full_grammar():
    spec = FaultSpec.parse(
        "transient=0.1, latency=0.05:0.2, slow=0.02:1048576,"
        "permanent=part-00003|part-00007, permanent=bad, seed=7"
    )
    assert spec.transient_rate == 0.1
    assert spec.latency_rate == 0.05 and spec.latency_seconds == 0.2
    assert spec.slow_rate == 0.02 and spec.slow_bandwidth == 1048576
    assert spec.permanent_substrings == ("part-00003", "part-00007", "bad")
    assert spec.seed == 7
    assert spec.active


def test_fault_spec_parse_roundtrips_through_describe():
    spec = FaultSpec.parse("transient=0.25,seed=3")
    assert FaultSpec.parse(spec.describe()) == spec


def test_fault_spec_empty_text_is_inactive():
    assert not FaultSpec.parse("").active
    assert not FaultSpec().active


@pytest.mark.parametrize(
    "text",
    [
        "bogus=1",  # unknown clause
        "transient",  # no '='
        "transient=nope",  # bad rate
        "transient=1.5",  # rate out of range
        "latency=0.1",  # missing seconds
        "slow=0.1",  # missing bandwidth
        "seed=x",  # non-integer seed
    ],
)
def test_fault_spec_parse_rejects_bad_clauses(text):
    with pytest.raises(ConfigurationError):
        FaultSpec.parse(text)


def test_fault_spec_validates_rates():
    with pytest.raises(ConfigurationError):
        FaultSpec(transient_rate=1.5)
    with pytest.raises(ConfigurationError):
        FaultSpec(latency_rate=0.5)  # no latency_seconds


# -- FaultInjector ----------------------------------------------------------


def seeded_store(n_keys: int = 2, nbytes: int = 256) -> ObjectStore:
    store = ObjectStore()
    for i in range(n_keys):
        store.put(f"data/part-{i:05d}.bin", bytes(range(256)) * (nbytes // 256))
    return store


def test_injector_is_deterministic_per_seed():
    def schedule(seed):
        injector = FaultInjector(
            seeded_store(), FaultSpec(transient_rate=0.3, seed=seed),
            sleep=lambda s: None,
        )
        outcomes = []
        for i in range(64):
            try:
                injector.read_range("data/part-00000.bin", 0, 16)
                outcomes.append("ok")
            except TransientStorageError:
                outcomes.append("err")
        return outcomes, injector.counters.transient

    first, n1 = schedule(11)
    second, n2 = schedule(11)
    other, n3 = schedule(12)
    assert first == second and n1 == n2
    assert first != other  # different seed, different schedule
    assert 0 < n1 < 64


def test_injector_permanent_substring_always_fails():
    injector = FaultInjector(
        seeded_store(), FaultSpec(permanent_substrings=("part-00001",))
    )
    for _ in range(5):
        with pytest.raises(PermanentStorageError):
            injector.read_range("data/part-00001.bin", 0, 8)
    # Other keys are untouched.
    assert injector.read_range("data/part-00000.bin", 0, 4) == bytes([0, 1, 2, 3])
    assert injector.counters.permanent == 5


def test_injector_latency_and_slow_call_sleep():
    sleeps: list[float] = []
    injector = FaultInjector(
        seeded_store(),
        FaultSpec(
            latency_rate=1.0, latency_seconds=0.25,
            slow_rate=1.0, slow_bandwidth=1024.0,
        ),
        sleep=sleeps.append,
    )
    data = injector.read_range("data/part-00000.bin", 0, 256)
    assert len(data) == 256
    # One latency spike + one throttled transfer (256 B at 1 KiB/s).
    assert sleeps == [0.25, 0.25]
    assert injector.counters.latency == 1 and injector.counters.slow == 1


def test_injector_delegates_everything_else():
    inner = seeded_store()
    injector = FaultInjector(inner, FaultSpec(transient_rate=1.0))
    injector.put("fresh", b"abc")
    assert inner.exists("fresh")
    assert injector.size("fresh") == 3
    assert injector.exists("fresh")
    injector.delete("fresh")
    assert not inner.exists("fresh")
    # Writes never fault, reads always do under transient=1.0.
    with pytest.raises(TransientStorageError):
        injector.read_range("data/part-00000.bin", 0, 1)


def test_injector_emits_fault_events():
    trace = EventLog()
    trace.start()
    injector = FaultInjector(
        seeded_store(), FaultSpec(transient_rate=1.0), trace=trace
    )
    with pytest.raises(TransientStorageError):
        injector.read_range("data/part-00000.bin", 0, 1)
    kinds = [e.kind for e in trace.snapshot()]
    assert kinds == ["fault_injected"]


# -- RetryPolicy / retry_call ----------------------------------------------


def test_retry_policy_validates_knobs():
    for bad in (
        dict(max_attempts=0),
        dict(base_backoff=-1.0),
        dict(base_backoff=2.0, max_backoff=1.0),
        dict(attempt_timeout=0.0),
        dict(deadline=-1.0),
        dict(hedge_after=0.0),
    ):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**bad)


def test_decorrelated_jitter_stays_in_bounds():
    policy = RetryPolicy(base_backoff=0.01, max_backoff=0.5)
    rng = random.Random(1)
    backoff = 0.0
    seen = []
    for _ in range(200):
        backoff = policy.next_backoff(rng, backoff)
        seen.append(backoff)
        assert policy.base_backoff <= backoff <= policy.max_backoff
    # The jitter actually spreads (not a constant schedule).
    assert len({round(b, 6) for b in seen}) > 10


def test_retry_call_recovers_after_transient_failures():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] < 3:
            raise TransientStorageError("blip")
        return "payload"

    observed = []
    result = retry_call(
        flaky,
        RetryPolicy(max_attempts=4, base_backoff=0.0, max_backoff=0.0),
        random.Random(0),
        on_retry=lambda attempt, exc, backoff: observed.append(attempt),
        sleep=lambda s: None,
    )
    assert result == "payload"
    assert calls["n"] == 3
    assert observed == [1, 2]


def test_retry_call_does_not_retry_non_transient():
    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise StorageError("hard failure")

    with pytest.raises(StorageError, match="hard failure"):
        retry_call(broken, RetryPolicy(), random.Random(0), sleep=lambda s: None)
    assert calls["n"] == 1


def test_retry_call_exhausts_budget_and_chains_cause():
    def always():
        raise TransientStorageError("still down")

    with pytest.raises(RetryBudgetExceeded) as info:
        retry_call(
            always,
            RetryPolicy(max_attempts=3, base_backoff=0.0, max_backoff=0.0),
            random.Random(0),
            sleep=lambda s: None,
        )
    assert isinstance(info.value.__cause__, TransientStorageError)
    # Budget exhaustion is itself transient *in kind*.
    assert isinstance(info.value, TransientStorageError)


def test_retry_call_respects_deadline():
    clock = {"now": 0.0}

    def tick():
        return clock["now"]

    def fail():
        clock["now"] += 10.0
        raise TransientStorageError("slow outage")

    with pytest.raises(RetryBudgetExceeded, match="deadline"):
        retry_call(
            fail,
            RetryPolicy(max_attempts=100, base_backoff=0.01, deadline=25.0),
            random.Random(0),
            clock=tick,
            sleep=lambda s: None,
        )
    assert clock["now"] < 100.0  # gave up long before attempts ran out


# -- CircuitBreaker ---------------------------------------------------------


def test_breaker_opens_after_consecutive_failures_and_closes_again():
    trace = EventLog()
    trace.start()
    breaker = CircuitBreaker(3, 2, name="cloud", trace=trace)
    breaker.record_failure()
    breaker.record_failure()
    assert not breaker.open
    breaker.record_failure()
    assert breaker.open and breaker.opens == 1
    breaker.record_success()
    assert breaker.open  # needs two consecutive successes
    breaker.record_success()
    assert not breaker.open and breaker.closes == 1
    kinds = [e.kind for e in trace.snapshot()]
    assert kinds == ["circuit_open", "circuit_close"]


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(3, 1)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert not breaker.open  # the streak never reached 3


def test_breaker_failure_resets_recovery_streak():
    breaker = CircuitBreaker(2, 3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.open
    breaker.record_success()
    breaker.record_success()
    breaker.record_failure()  # recovery interrupted
    breaker.record_success()
    breaker.record_success()
    assert breaker.open  # needs three *consecutive* successes
    breaker.record_success()
    assert not breaker.open


def test_breaker_validates_thresholds():
    with pytest.raises(ConfigurationError):
        CircuitBreaker(0, 1)
    with pytest.raises(ConfigurationError):
        CircuitBreaker(1, 0)


# -- ChunkRetriever integration --------------------------------------------


class FlakyStore(ObjectStore):
    """Fails the first ``fail_first`` read of every distinct range."""

    def __init__(self, fail_first: int = 1):
        super().__init__()
        self.fail_first = fail_first
        self.attempts: dict[tuple[str, int, int], int] = {}
        self.ranges: list[tuple[int, int]] = []
        self._flaky_lock = threading.Lock()

    def read_range(self, key: str, offset: int, nbytes: int) -> bytes:
        with self._flaky_lock:
            seen = self.attempts.get((key, offset, nbytes), 0)
            self.attempts[(key, offset, nbytes)] = seen + 1
            self.ranges.append((offset, nbytes))
        if seen < self.fail_first:
            raise TransientStorageError(f"flake #{seen} at {offset}")
        return super().read_range(key, offset, nbytes)


def test_retriever_retries_each_subrange_independently():
    store = FlakyStore(fail_first=2)
    payload = bytes(range(256)) * 16
    store.put("k", payload)
    stats = ResilienceStats()
    retriever = ChunkRetriever(
        store, threads=4,
        policy=RetryPolicy(max_attempts=4, base_backoff=0.0, max_backoff=0.0),
        stats=stats,
    )
    assert retriever.fetch("k", 0, len(payload)) == payload
    # 4 sub-ranges x 2 flakes each.
    assert stats.retries == 8


def test_retriever_without_policy_fails_fast():
    store = FlakyStore(fail_first=1)
    store.put("k", b"x" * 64)
    retriever = ChunkRetriever(store, threads=2)
    with pytest.raises(TransientStorageError):
        retriever.fetch("k", 0, 64)


def test_retriever_raises_budget_exceeded_when_store_stays_down():
    store = FlakyStore(fail_first=99)
    store.put("k", b"x" * 64)
    retriever = ChunkRetriever(
        store, threads=2,
        policy=RetryPolicy(max_attempts=3, base_backoff=0.0, max_backoff=0.0),
    )
    with pytest.raises(RetryBudgetExceeded):
        retriever.fetch("k", 0, 64)


def test_open_breaker_degrades_to_single_stream():
    store = FlakyStore(fail_first=0)
    payload = b"y" * 128
    store.put("k", payload)
    breaker = CircuitBreaker(1, 1000)
    breaker.record_failure()  # trip it
    assert breaker.open
    retriever = ChunkRetriever(
        store, threads=4, policy=RetryPolicy(base_backoff=0.0, max_backoff=0.0),
        breaker=breaker,
    )
    assert retriever.fetch("k", 0, 128) == payload
    # One whole-range read, not four quarters.
    assert store.ranges == [(0, 128)]


def test_retriever_failures_trip_breaker_then_recovery_closes_it():
    store = FlakyStore(fail_first=2)
    payload = b"z" * 64
    store.put("k", payload)
    breaker = CircuitBreaker(2, 4)
    retriever = ChunkRetriever(
        store, threads=1,  # single stream: failures are strictly consecutive
        policy=RetryPolicy(max_attempts=4, base_backoff=0.0, max_backoff=0.0),
        breaker=breaker,
    )
    assert retriever.fetch("k", 0, 64) == payload  # fail, fail (trips), ok
    assert breaker.opens == 1 and breaker.open
    # Consecutive successes on the degraded stream close it again.
    for _ in range(4):
        assert retriever.fetch("k", 0, 64) == payload
    assert not breaker.open and breaker.closes == 1


class StragglerStore(ObjectStore):
    """First read of every range stalls; duplicates return instantly.

    The stall sleeps on an injected clock, so under a
    :class:`~repro.clock.FakeClock` the straggler parks in *virtual*
    time and the test never actually waits.
    """

    def __init__(self, stall: float, clock):
        super().__init__()
        self.stall = stall
        self.clock = clock
        self._seen: set[tuple[str, int, int]] = set()
        self._straggler_lock = threading.Lock()

    def read_range(self, key: str, offset: int, nbytes: int) -> bytes:
        with self._straggler_lock:
            first = (key, offset, nbytes) not in self._seen
            self._seen.add((key, offset, nbytes))
        if first:
            self.clock.sleep(self.stall)
        return super().read_range(key, offset, nbytes)


def test_hedged_request_wins_over_straggler():
    with FakeClock() as clock:
        store = StragglerStore(stall=1800.0, clock=clock)
        payload = b"h" * 64
        store.put("k", payload)
        stats = ResilienceStats()
        retriever = ChunkRetriever(
            store, threads=1,
            policy=RetryPolicy(
                base_backoff=0.0, max_backoff=0.0, hedge_after=2.0
            ),
            stats=stats,
            clock=clock,
        )
        assert retriever.fetch("k", 0, 64) == payload
        # The straggler would have held the fetch for 1800 virtual
        # seconds; the hedge fired at 2.0 and won immediately.
        assert clock.monotonic() < 1800.0
        assert stats.hedges == 1
        assert stats.hedge_wins == 1


def test_attempt_timeout_abandons_hung_request_and_retries():
    with FakeClock() as clock:
        store = StragglerStore(stall=1800.0, clock=clock)
        payload = b"t" * 32
        store.put("k", payload)
        stats = ResilienceStats()
        retriever = ChunkRetriever(
            store, threads=1,
            policy=RetryPolicy(
                max_attempts=3, base_backoff=0.0, max_backoff=0.0,
                attempt_timeout=5.0,
            ),
            stats=stats,
            clock=clock,
        )
        assert retriever.fetch("k", 0, 32) == payload
        assert clock.monotonic() < 1800.0  # never waited out the straggler
        assert stats.timeouts == 1
        assert stats.retries == 1  # the timed-out attempt was retried


def test_retriever_records_attempt_metrics_and_trace():
    store = FlakyStore(fail_first=1)
    store.put("k", b"m" * 64)
    registry = MetricsRegistry()
    trace = EventLog()
    trace.start()
    retriever = ChunkRetriever(
        store, threads=2,
        policy=RetryPolicy(max_attempts=3, base_backoff=0.0, max_backoff=0.0),
        trace=trace, metrics=registry,
    )
    retriever.fetch("k", 0, 64, job_id=9, file_id=3)
    snap = registry.snapshot()
    assert snap["counters"]["storage_attempts"] == 4  # 2 ranges x 2 attempts
    assert snap["histograms"]["attempt_seconds"]["count"] == 4
    retry_events = [e for e in trace.snapshot() if e.kind == "retry"]
    assert len(retry_events) == 2
    assert all(e.job_id == 9 and e.file_id == 3 for e in retry_events)
