"""Tests for the extension CLI commands (sweep / stealing / iterative)."""

from __future__ import annotations

import pytest

from repro.cli import main

SCALE = ["--scale", "0.02"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_sweep_command(capsys):
    code, out = run_cli(capsys, *SCALE, "sweep", "knn")
    assert code == 0
    assert "Data-skew continuum" in out
    assert "100% local" in out and "0% local" in out
    assert "best placement" in out


def test_stealing_command(capsys):
    code, out = run_cli(capsys, *SCALE, "stealing", "knn")
    assert code == 0
    assert "Work stealing" in out
    assert "env-17/83" in out
    assert "stealing gain" in out


def test_iterative_command(capsys):
    code, out = run_cli(capsys, *SCALE, "iterative", "pagerank",
                        "--iterations", "2")
    assert code == 0
    assert "x 2 iterations" in out
    assert "robj exchange" in out


def test_iterative_rejects_bad_env():
    with pytest.raises(SystemExit):
        main(["iterative", "pagerank", "--env", "env-weird"])


def test_unknown_app_propagates_as_error(capsys):
    code = main([*SCALE, "sweep", "not-an-app"])
    assert code == 1
    assert "error:" in capsys.readouterr().err
