"""Tests for the fluid fair-share link model.

The steady-state cases are pinned against hand-computed max-min allocations;
the property test checks byte conservation under arbitrary flow arrivals.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.linkmodel import FairShareLink


def run_transfers(link, env, specs):
    """specs: list of (start_time, nbytes, group). Returns completion times."""
    done = {}

    def one(i, start, nbytes, group):
        if start > 0:
            yield env.timeout(start)
        yield link.transfer(nbytes, group=group)
        done[i] = env.now

    for i, (start, nbytes, group) in enumerate(specs):
        env.process(one(i, start, nbytes, group))
    env.run()
    return done


def test_single_flow_full_bandwidth():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = run_transfers(link, env, [(0, 500, None)])
    assert done[0] == pytest.approx(5.0)


def test_latency_charged_once():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0, latency=0.5)
    done = run_transfers(link, env, [(0, 100, None)])
    assert done[0] == pytest.approx(1.5)


def test_equal_sharing():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = run_transfers(link, env, [(0, 300, None), (0, 300, None)])
    # Two flows at 50 each finish together.
    assert done[0] == pytest.approx(6.0)
    assert done[1] == pytest.approx(6.0)


def test_residual_speedup_after_completion():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = run_transfers(link, env, [(0, 100, None), (0, 300, None)])
    # Both at 50 until t=2 (flow 0 done); flow 1 has 200 left at 100/s.
    assert done[0] == pytest.approx(2.0)
    assert done[1] == pytest.approx(4.0)


def test_per_flow_cap():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0, per_flow_cap=20.0)
    done = run_transfers(link, env, [(0, 100, None)])
    assert done[0] == pytest.approx(5.0)  # capped at 20/s despite idle trunk


def test_group_cap_shared_within_group():
    env = Environment()
    link = FairShareLink(env, bandwidth=1000.0, group_cap=50.0)
    done = run_transfers(link, env, [(0, 100, "f"), (0, 100, "f"), (0, 100, "g")])
    # f-flows: 25/s each; g: 50/s.
    assert done[2] == pytest.approx(2.0)
    assert done[0] == pytest.approx(4.0)
    assert done[1] == pytest.approx(4.0)


def test_water_filling_redistributes_capped_slack():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0, per_flow_cap=60.0, group_cap=20.0)
    # One grouped flow capped at 20; one ungrouped flow gets the remaining 60
    # (its own cap), not the naive 50 fair share.
    done = run_transfers(link, env, [(0, 100, "f"), (0, 120, None)])
    assert done[0] == pytest.approx(5.0)
    assert done[1] == pytest.approx(2.0)


def test_late_arrival_slows_existing_flow():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    done = run_transfers(link, env, [(0, 400, None), (2.0, 100, None)])
    # Flow 0: 200 bytes by t=2, then 50/s. Flow 1: 50/s from t=2.
    assert done[1] == pytest.approx(4.0)
    assert done[0] == pytest.approx(5.0)


def test_zero_byte_transfer_completes_after_latency():
    env = Environment()
    link = FairShareLink(env, bandwidth=10.0, latency=0.25)
    done = run_transfers(link, env, [(0, 0, None)])
    assert done[0] == pytest.approx(0.25)


def test_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        FairShareLink(env, bandwidth=0)
    with pytest.raises(SimulationError):
        FairShareLink(env, bandwidth=1, latency=-1)
    with pytest.raises(SimulationError):
        FairShareLink(env, bandwidth=1, per_flow_cap=0)
    link = FairShareLink(env, bandwidth=1)
    with pytest.raises(SimulationError):
        link.transfer(-1)


def test_stats_accounting():
    env = Environment()
    link = FairShareLink(env, bandwidth=100.0)
    run_transfers(link, env, [(0, 300, None), (1.0, 200, None)])
    assert link.stats.flows_started == 2
    assert link.stats.flows_completed == 2
    assert link.stats.bytes_served == pytest.approx(500.0)
    assert link.active_flows == 0


@settings(deadline=None, max_examples=40)
@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 10.0),  # start
            st.integers(1, 10_000),  # bytes
            st.sampled_from([None, "a", "b"]),  # group
        ),
        min_size=1,
        max_size=12,
    ),
    st.floats(10.0, 1000.0),  # bandwidth
)
def test_conservation_property(specs, bandwidth):
    env = Environment()
    link = FairShareLink(env, bandwidth=bandwidth, per_flow_cap=bandwidth / 2,
                         group_cap=bandwidth / 3)
    done = run_transfers(link, env, specs)
    assert len(done) == len(specs)
    total = sum(nbytes for _, nbytes, _ in specs)
    assert link.stats.bytes_served == pytest.approx(total, rel=1e-6, abs=1e-3)
    # Every flow takes at least its unconstrained minimum time.
    for i, (start, nbytes, _) in enumerate(specs):
        assert done[i] >= start + nbytes / bandwidth - 1e-6
