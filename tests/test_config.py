"""Tests for configuration validation."""

from __future__ import annotations

import pytest

from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    ExperimentConfig,
    MiddlewareTuning,
    PlacementSpec,
    halved,
)
from repro.errors import ConfigurationError
from repro.units import GB, MB


def test_paper_dataset_shape():
    spec = DatasetSpec.paper(record_bytes=4)
    assert spec.total_bytes == 120 * GB
    assert spec.num_files == 32
    assert spec.num_chunks == 960
    assert spec.chunk_bytes == 128 * MB
    assert spec.chunks_per_file == 30
    assert spec.units_per_chunk == 32 * MB
    assert spec.total_units == 960 * 32 * MB


def test_dataset_divisibility_enforced():
    with pytest.raises(ConfigurationError):
        DatasetSpec(total_bytes=100, num_files=3, chunk_bytes=10, record_bytes=2)
    with pytest.raises(ConfigurationError):
        DatasetSpec(total_bytes=90, num_files=3, chunk_bytes=7, record_bytes=1)
    with pytest.raises(ConfigurationError):
        DatasetSpec(total_bytes=90, num_files=3, chunk_bytes=10, record_bytes=3)


def test_dataset_scaled_preserves_structure():
    spec = DatasetSpec.paper(record_bytes=4)
    small = spec.scaled(1e-6)
    assert small.num_files == spec.num_files
    assert small.num_chunks == spec.num_chunks
    assert small.chunk_bytes % small.record_bytes == 0
    assert small.total_bytes < spec.total_bytes
    with pytest.raises(ConfigurationError):
        spec.scaled(0)


def test_placement_split():
    spec = PlacementSpec(local_fraction=1.0 / 3.0)
    assert spec.split(32) == (11, 21)
    assert PlacementSpec(0.0).split(10) == (0, 10)
    assert PlacementSpec(1.0).split(10) == (10, 0)
    with pytest.raises(ConfigurationError):
        PlacementSpec(local_fraction=1.5)


def test_compute_spec():
    spec = ComputeSpec(local_cores=16, cloud_cores=22)
    assert spec.total_cores == 38
    assert spec.active_sites == (LOCAL_SITE, CLOUD_SITE)
    assert spec.cores_at(LOCAL_SITE) == 16
    assert spec.label() == "(16,22)"
    with pytest.raises(ConfigurationError):
        ComputeSpec(local_cores=0, cloud_cores=0)
    with pytest.raises(ConfigurationError):
        spec.cores_at("mars")


def test_compute_single_site():
    assert ComputeSpec(local_cores=4, cloud_cores=0).active_sites == (LOCAL_SITE,)
    assert ComputeSpec(local_cores=0, cloud_cores=4).active_sites == (CLOUD_SITE,)


def test_halved():
    assert halved(ComputeSpec(32, 0)).total_cores == 32
    assert halved(ComputeSpec(32, 0)).local_cores == 16


def test_tuning_validation():
    MiddlewareTuning()  # defaults valid
    with pytest.raises(ConfigurationError):
        MiddlewareTuning(job_group_size=0)
    with pytest.raises(ConfigurationError):
        MiddlewareTuning(retrieval_threads=0)
    with pytest.raises(ConfigurationError):
        MiddlewareTuning(units_per_group=-1)
    with pytest.raises(ConfigurationError):
        MiddlewareTuning(pool_low_water=-1)


def test_experiment_config():
    cfg = ExperimentConfig(
        name="env-test",
        app="knn",
        dataset=DatasetSpec(total_bytes=1024, num_files=4, chunk_bytes=64,
                            record_bytes=4),
        placement=PlacementSpec(local_fraction=0.5),
        compute=ComputeSpec(local_cores=2, cloud_cores=2),
    )
    assert cfg.local_files == 2
    assert cfg.cloud_files == 2
    assert "env-test" in cfg.describe()
    ablated = cfg.with_tuning(retrieval_threads=9)
    assert ablated.tuning.retrieval_threads == 9
    assert cfg.tuning.retrieval_threads == 4  # original untouched


def test_experiment_config_requires_names():
    spec = DatasetSpec(total_bytes=1024, num_files=4, chunk_bytes=64, record_bytes=4)
    with pytest.raises(ConfigurationError):
        ExperimentConfig(name="", app="knn", dataset=spec,
                         placement=PlacementSpec(0.5),
                         compute=ComputeSpec(1, 1))
    with pytest.raises(ConfigurationError):
        ExperimentConfig(name="x", app="", dataset=spec,
                         placement=PlacementSpec(0.5),
                         compute=ComputeSpec(1, 1))
