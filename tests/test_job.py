"""Tests for jobs and job groups."""

from __future__ import annotations

import pytest

from repro.config import CLOUD_SITE, LOCAL_SITE
from repro.core.job import Job, JobGroup
from repro.errors import SchedulingError


def make_job(job_id=0, file_id=0, chunk_index=0, site=LOCAL_SITE):
    return Job(
        job_id=job_id,
        file_id=file_id,
        chunk_index=chunk_index,
        offset=chunk_index * 1024,
        nbytes=1024,
        num_units=128,
        site=site,
    )


def test_job_locality():
    job = make_job(site=CLOUD_SITE)
    assert job.is_local_to(CLOUD_SITE)
    assert not job.is_local_to(LOCAL_SITE)


def test_job_validation():
    with pytest.raises(SchedulingError):
        Job(job_id=-1, file_id=0, chunk_index=0, offset=0, nbytes=1, num_units=1,
            site=LOCAL_SITE)
    with pytest.raises(SchedulingError):
        Job(job_id=0, file_id=0, chunk_index=0, offset=0, nbytes=0, num_units=1,
            site=LOCAL_SITE)
    with pytest.raises(SchedulingError):
        Job(job_id=0, file_id=0, chunk_index=0, offset=-5, nbytes=1, num_units=1,
            site=LOCAL_SITE)


def test_job_ordering_by_id():
    jobs = [make_job(job_id=i) for i in (3, 1, 2)]
    assert [j.job_id for j in sorted(jobs)] == [1, 2, 3]


def test_group_single_file_enforced():
    with pytest.raises(SchedulingError):
        JobGroup(
            group_id=0,
            cluster="c",
            jobs=(make_job(0, file_id=0), make_job(1, file_id=1)),
        )


def test_group_requires_jobs():
    with pytest.raises(SchedulingError):
        JobGroup(group_id=0, cluster="c", jobs=())


def test_group_consecutive_detection():
    consecutive = JobGroup(
        group_id=0,
        cluster="c",
        jobs=tuple(make_job(i, chunk_index=i) for i in range(4)),
    )
    assert consecutive.is_consecutive()
    scattered = JobGroup(
        group_id=1,
        cluster="c",
        jobs=(make_job(0, chunk_index=0), make_job(1, chunk_index=2)),
    )
    assert not scattered.is_consecutive()


def test_group_properties():
    group = JobGroup(
        group_id=7,
        cluster="c",
        jobs=tuple(make_job(i, file_id=3, chunk_index=i, site=CLOUD_SITE)
                   for i in range(3)),
    )
    assert group.file_id == 3
    assert group.site == CLOUD_SITE
    assert len(group) == 3
