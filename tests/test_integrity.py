"""Tests for dataset integrity checksums."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CLOUD_SITE, LOCAL_SITE, DatasetSpec, PlacementSpec
from repro.core.index import DataIndex, FileEntry
from repro.data.dataset import DatasetReader, build_dataset
from repro.data.records import VALUE_SCHEMA
from repro.errors import DataFormatError, IndexError_
from repro.storage.objectstore import ObjectStore


def make(stores):
    spec = DatasetSpec(total_bytes=4 * 2 * 64 * 8, num_files=4,
                       chunk_bytes=64 * 8, record_bytes=8)

    def block(start, count, index):
        return np.arange(start, start + count, dtype=np.float64).reshape(-1, 1)

    index = build_dataset(spec, PlacementSpec(0.5), VALUE_SCHEMA, block, stores)
    return index


def test_builder_records_checksums(two_site_stores):
    index = make(two_site_stores)
    assert all(e.checksum is not None for e in index.files)
    assert len({e.checksum for e in index.files}) > 1  # content differs


def test_verify_clean_dataset(two_site_stores):
    index = make(two_site_stores)
    reader = DatasetReader(index, two_site_stores)
    assert reader.verify_all() == 4
    assert reader.verify_file(0) is True


def test_corruption_detected(two_site_stores):
    index = make(two_site_stores)
    entry = index.files[2]
    store = two_site_stores[entry.site]
    blob = bytearray(store.get(entry.path))
    blob[100] ^= 0xFF
    store.put(entry.path, bytes(blob))
    reader = DatasetReader(index, two_site_stores)
    with pytest.raises(DataFormatError, match="integrity"):
        reader.verify_file(2)
    # Other files unaffected.
    assert reader.verify_file(0)


def test_checksum_survives_json_roundtrip(two_site_stores):
    index = make(two_site_stores)
    restored = DataIndex.from_json(index.to_json())
    assert [e.checksum for e in restored.files] == [
        e.checksum for e in index.files
    ]
    reader = DatasetReader(restored, two_site_stores)
    assert reader.verify_all() == 4


def test_missing_checksum_is_an_error(two_site_stores):
    index = make(two_site_stores)
    entry = index.files[0]
    bare = FileEntry(
        file_id=entry.file_id, site=entry.site, path=entry.path,
        nbytes=entry.nbytes, chunk_bytes=entry.chunk_bytes,
        units_per_chunk=entry.units_per_chunk, checksum=None,
    )
    reader = DatasetReader(DataIndex(files=[bare]), two_site_stores)
    with pytest.raises(DataFormatError, match="no checksum"):
        reader.verify_file(entry.file_id)


def test_checksum_range_validated():
    with pytest.raises(IndexError_):
        FileEntry(file_id=0, site=LOCAL_SITE, path="x", nbytes=64,
                  chunk_bytes=64, units_per_chunk=8, checksum=2**32)


def test_legacy_index_without_checksums_loads():
    """Indices written before the checksum field must still parse."""
    legacy = """
    {"format_version": 1, "files": [
      {"file_id": 0, "site": "local", "path": "a", "nbytes": 64,
       "chunk_bytes": 64, "units_per_chunk": 8}
    ]}
    """
    index = DataIndex.from_json(legacy)
    assert index.files[0].checksum is None
