"""Tests for the shared event log (repro.obs.events)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import SimulationError, TraceError
from repro.obs import (
    ANALYSIS_KINDS,
    KINDS,
    RUNTIME_KINDS,
    SIM_KINDS,
    EventLog,
    TraceEvent,
)


def test_vocabulary_is_sim_plus_runtime_plus_analysis():
    assert KINDS == SIM_KINDS + RUNTIME_KINDS + ANALYSIS_KINDS
    assert "fetch_start" in SIM_KINDS
    for kind in ("steal", "slave_failed", "job_reexecuted", "remote_fetch"):
        assert kind in RUNTIME_KINDS
    assert "straggler_detected" in ANALYSIS_KINDS


def test_record_and_queries():
    log = EventLog()
    log.record(0.0, "fetch_start", worker=1, job_id=7, file_id=2)
    log.record(1.0, "fetch_end", worker=1, job_id=7, file_id=2)
    log.record(1.5, "group_assigned", cluster="c")
    assert len(log) == 3
    assert log.workers() == [1]
    assert [e.kind for e in log.for_worker(1)] == ["fetch_start", "fetch_end"]
    assert len(log.of_kind("group_assigned")) == 1
    assert log.makespan() == 1.5
    assert EventLog().makespan() == 0.0


def test_unknown_kind_rejected_as_simulation_error():
    log = EventLog()
    with pytest.raises(TraceError):
        log.record(0.0, "nonsense")
    # Backward compatibility: callers that catch SimulationError still work.
    with pytest.raises(SimulationError):
        log.record(0.0, "nonsense")


def test_emit_stamps_monotonic_relative_time():
    log = EventLog()
    log.start()
    log.emit("fetch_start", worker=0)
    log.emit("fetch_end", worker=0)
    a, b = log.events
    assert 0.0 <= a.time <= b.time
    assert b.time < 5.0  # relative to origin, not an absolute clock


def test_emit_without_start_sets_origin():
    log = EventLog()
    log.emit("job_done", worker=0)
    assert log.events[0].time >= 0.0
    assert log.events[0].time < 5.0


def test_origin_is_sticky_across_starts():
    log = EventLog()
    log.start()
    log.emit("job_done", worker=0)
    first = log.events[0].time
    log.start()  # second start must not reset the origin
    log.emit("job_done", worker=0)
    assert log.events[1].time >= first


def test_concurrent_emission_is_safe():
    log = EventLog()
    log.start()
    per_thread = 500

    def worker(wid: int) -> None:
        for i in range(per_thread):
            log.emit("job_done", worker=wid, job_id=i)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(log) == 8 * per_thread
    assert log.workers() == list(range(8))
    for wid in range(8):
        mine = log.for_worker(wid)
        assert len(mine) == per_thread
        # Each thread's own events appear in its emission order.
        assert [e.job_id for e in mine] == list(range(per_thread))


def test_snapshot_is_a_copy():
    log = EventLog()
    log.record(0.0, "job_done", worker=0)
    snap = log.snapshot()
    log.record(1.0, "job_done", worker=0)
    assert len(snap) == 1 and len(log) == 2


def test_construct_from_events():
    events = [TraceEvent(time=0.5, kind="steal", cluster="c", file_id=3)]
    log = EventLog(events)
    assert len(log) == 1
    assert log.of_kind("steal")[0].file_id == 3


def test_unbounded_by_default():
    log = EventLog()
    for i in range(100):
        log.record(float(i), "job_done", worker=0, job_id=i)
    assert len(log) == 100
    assert log.events_dropped == 0


def test_ring_buffer_drops_oldest_and_counts():
    log = EventLog(max_events=4)
    for i in range(10):
        log.record(float(i), "job_done", worker=0, job_id=i)
    assert len(log) == 4
    assert [e.job_id for e in log.events] == [6, 7, 8, 9]
    assert log.events_dropped == 6
    # Queries see only the retained window.
    assert log.makespan() == 9.0
    assert len(log.of_kind("job_done")) == 4


def test_ring_buffer_applies_to_seed_events():
    seed = [
        TraceEvent(time=float(i), kind="job_done", worker=0, job_id=i)
        for i in range(6)
    ]
    log = EventLog(seed, max_events=4)
    assert len(log) == 4
    assert [e.job_id for e in log.events] == [2, 3, 4, 5]
    assert log.events_dropped == 2


def test_ring_capacity_must_be_positive():
    with pytest.raises(TraceError):
        EventLog(max_events=0)
    with pytest.raises(TraceError):
        EventLog(max_events=-5)
