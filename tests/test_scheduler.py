"""Tests for the head-node scheduling policy — the paper's Section III-B."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CLOUD_SITE, LOCAL_SITE, DatasetSpec, MiddlewareTuning, PlacementSpec
from repro.core.index import build_index
from repro.core.scheduler import HeadScheduler
from repro.errors import SchedulingError

from conftest import small_spec


def make_scheduler(files=8, chunks=4, local_fraction=0.5, tuning=None, seed=1):
    spec = small_spec(record_bytes=4, files=files, chunks_per_file=chunks)
    index = build_index(spec, PlacementSpec(local_fraction=local_fraction))
    sched = HeadScheduler(index.jobs(), tuning or MiddlewareTuning(), seed=seed)
    sched.register_cluster("local-cluster", LOCAL_SITE)
    sched.register_cluster("cloud-cluster", CLOUD_SITE)
    return sched


def test_local_jobs_preferred():
    sched = make_scheduler()
    group = sched.request_jobs("local-cluster", 4)
    assert group is not None
    assert group.site == LOCAL_SITE
    assert sched.clusters["local-cluster"].jobs_stolen == 0


def test_consecutive_assignment():
    sched = make_scheduler()
    group = sched.request_jobs("local-cluster", 4)
    assert group.is_consecutive()
    # Next request continues the same file if it has pending jobs — here the
    # first file is exhausted (4 chunks/file), so a fresh file starts at 0.
    group2 = sched.request_jobs("local-cluster", 4)
    assert group2.is_consecutive()
    assert group2.file_id != group.file_id


def test_streaming_same_file_across_requests():
    sched = make_scheduler(chunks=8)
    g1 = sched.request_jobs("local-cluster", 4)
    g2 = sched.request_jobs("local-cluster", 4)
    assert g1.file_id == g2.file_id
    assert g2.jobs[0].chunk_index == g1.jobs[-1].chunk_index + 1


def test_stealing_after_local_exhausted():
    sched = make_scheduler(files=4, chunks=2, local_fraction=0.5)
    # Drain the local cluster's local jobs (2 files x 2 chunks).
    for _ in range(2):
        group = sched.request_jobs("local-cluster", 2)
        assert group.site == LOCAL_SITE
    stolen = sched.request_jobs("local-cluster", 2)
    assert stolen is not None
    assert stolen.site == CLOUD_SITE
    assert sched.clusters["local-cluster"].jobs_stolen == 2


def test_min_contention_stealing_picks_least_read_file():
    sched = make_scheduler(files=4, chunks=4, local_fraction=0.0)
    # Cloud reads file 0 (its own site) — 1 outstanding group on file 0.
    g_cloud = sched.request_jobs("cloud-cluster", 2)
    assert g_cloud.file_id == 0
    # Local steals: file 0 has a reader, so files 1..3 tie at zero readers;
    # lowest id wins.
    g_local = sched.request_jobs("local-cluster", 2)
    assert g_local.file_id == 1
    # Acknowledge cloud's group; file 0 is now least-read again... but local
    # keeps streaming file 1 only for local jobs; stealing re-evaluates.
    sched.complete_group(g_cloud.group_id)
    g_local2 = sched.request_jobs("local-cluster", 2)
    assert g_local2.file_id in (0, 1)


def test_exhaustion_returns_none():
    sched = make_scheduler(files=2, chunks=2, local_fraction=1.0)
    taken = 0
    while True:
        group = sched.request_jobs("local-cluster", 3)
        if group is None:
            break
        taken += len(group)
    assert taken == 4
    assert sched.exhausted
    assert sched.request_jobs("cloud-cluster") is None


def test_unregistered_cluster_rejected():
    sched = make_scheduler()
    with pytest.raises(SchedulingError):
        sched.request_jobs("nobody", 1)


def test_double_registration_rejected():
    sched = make_scheduler()
    with pytest.raises(SchedulingError):
        sched.register_cluster("local-cluster", LOCAL_SITE)


def test_bad_group_size_rejected():
    sched = make_scheduler()
    with pytest.raises(SchedulingError):
        sched.request_jobs("local-cluster", 0)


def test_complete_unknown_group_rejected():
    sched = make_scheduler()
    with pytest.raises(SchedulingError):
        sched.complete_group(123)


def test_complete_group_updates_readers_and_stats():
    sched = make_scheduler()
    group = sched.request_jobs("local-cluster", 2)
    assert sched.readers_of(group.file_id) == 1
    sched.complete_group(group.group_id)
    assert sched.readers_of(group.file_id) == 0
    assert sched.clusters["local-cluster"].groups_completed == 1
    with pytest.raises(SchedulingError):
        sched.complete_group(group.group_id)


def test_non_consecutive_ablation():
    tuning = MiddlewareTuning(consecutive_assignment=False)
    sched = make_scheduler(files=2, chunks=8, local_fraction=1.0, tuning=tuning)
    group = sched.request_jobs("local-cluster", 6)
    assert not group.is_consecutive()


def test_random_stealing_ablation_deterministic_per_seed():
    tuning = MiddlewareTuning(min_contention_stealing=False)
    picks_a = [make_scheduler(local_fraction=0.0, tuning=tuning, seed=7)
               .request_jobs("local-cluster", 2).file_id for _ in range(3)]
    picks_b = [make_scheduler(local_fraction=0.0, tuning=tuning, seed=7)
               .request_jobs("local-cluster", 2).file_id for _ in range(3)]
    assert picks_a == picks_b


@settings(deadline=None)
@given(
    files=st.integers(2, 10),
    chunks=st.integers(1, 6),
    fraction=st.floats(0.0, 1.0),
    group_size=st.integers(1, 7),
    order=st.lists(st.sampled_from(["local-cluster", "cloud-cluster"]),
                   min_size=1, max_size=200),
)
def test_every_job_assigned_exactly_once(files, chunks, fraction, group_size, order):
    """Conservation: alternating requests in any order cover all jobs once."""
    spec = DatasetSpec(
        total_bytes=files * chunks * 64, num_files=files, chunk_bytes=64,
        record_bytes=8,
    )
    index = build_index(spec, PlacementSpec(local_fraction=fraction))
    sched = HeadScheduler(index.jobs(), MiddlewareTuning())
    sched.register_cluster("local-cluster", LOCAL_SITE)
    sched.register_cluster("cloud-cluster", CLOUD_SITE)
    seen: set[int] = set()
    idx = 0
    while not sched.exhausted:
        cluster = order[idx % len(order)]
        idx += 1
        group = sched.request_jobs(cluster, group_size)
        if group is None:
            break
        for job in group.jobs:
            assert job.job_id not in seen
            seen.add(job.job_id)
        # Stolen accounting matches site mismatch.
        stats = sched.clusters[cluster]
        if idx > 10 * files * chunks:  # safety against livelock
            raise AssertionError("scheduler did not converge")
    assert len(seen) == spec.num_chunks
    total_assigned = sum(c.jobs_assigned for c in sched.clusters.values())
    assert total_assigned == spec.num_chunks
