"""Tests for the simulated compute cost model."""

from __future__ import annotations

import math

import pytest

from repro.apps.base import AppProfile
from repro.cluster.variability import VariabilityModel
from repro.config import CLOUD_SITE, LOCAL_SITE
from repro.errors import ConfigurationError, SimulationError
from repro.sim.computemodel import ComputeModel


def profile(cloud_slowdown=1.5):
    return AppProfile(
        key="t",
        unit_cost_local=2.0e-6,
        cloud_slowdown=cloud_slowdown,
        robj_bytes=1024,
        record_bytes=8,
    )


def exact_model(**kwargs):
    return ComputeModel(
        profile=profile(**kwargs),
        variability={
            LOCAL_SITE: VariabilityModel(sigma=0.0),
            CLOUD_SITE: VariabilityModel(sigma=0.0),
        },
    )


def test_job_seconds_scales_with_units_and_site():
    model = exact_model()
    local = model.job_seconds(LOCAL_SITE, 0, 1_000_000)
    cloud = model.job_seconds(CLOUD_SITE, 0, 1_000_000)
    assert local == pytest.approx(2.0)
    assert cloud == pytest.approx(3.0)
    with pytest.raises(SimulationError):
        model.job_seconds(LOCAL_SITE, 0, -1)


def test_jitter_deterministic_per_worker():
    model = ComputeModel(
        profile=profile(),
        variability={
            LOCAL_SITE: VariabilityModel(sigma=0.2, seed=1),
            CLOUD_SITE: VariabilityModel(sigma=0.2, seed=1),
        },
    )
    a = [model.job_seconds(CLOUD_SITE, 7, 100) for _ in range(3)]
    model2 = ComputeModel(
        profile=profile(),
        variability={
            LOCAL_SITE: VariabilityModel(sigma=0.2, seed=1),
            CLOUD_SITE: VariabilityModel(sigma=0.2, seed=1),
        },
    )
    b = [model2.job_seconds(CLOUD_SITE, 7, 100) for _ in range(3)]
    assert a == b
    assert len(set(a)) == 3  # jitter varies per job


def test_merge_and_combine_costs():
    model = exact_model()
    assert model.merge_seconds(0) == 0.0
    assert model.merge_seconds(2 * 1024**3) == pytest.approx(1.0)
    # Tree combine: log2(8) = 3 rounds.
    robj = 100 * 1024 * 1024
    bw = 1024**3
    per_round = robj / bw + model.merge_seconds(robj)
    assert model.combine_seconds(robj, 8, bw) == pytest.approx(3 * per_round)
    assert model.combine_seconds(robj, 1, bw) == 0.0
    # Non-power-of-two rounds up.
    assert model.combine_seconds(robj, 5, bw) == pytest.approx(3 * per_round)
    with pytest.raises(SimulationError):
        model.combine_seconds(robj, 0, bw)
    with pytest.raises(SimulationError):
        model.combine_seconds(robj, 2, 0)
    with pytest.raises(SimulationError):
        model.merge_seconds(-1)


def test_missing_variability_rejected():
    with pytest.raises(SimulationError):
        ComputeModel(profile=profile(),
                     variability={LOCAL_SITE: VariabilityModel(sigma=0.0)})


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        AppProfile(key="x", unit_cost_local=-1, cloud_slowdown=1.0,
                   robj_bytes=1, record_bytes=1)
    with pytest.raises(ConfigurationError):
        AppProfile(key="x", unit_cost_local=1, cloud_slowdown=0.5,
                   robj_bytes=1, record_bytes=1)
    with pytest.raises(ConfigurationError):
        AppProfile(key="x", unit_cost_local=1, cloud_slowdown=1.0,
                   robj_bytes=-1, record_bytes=1)
