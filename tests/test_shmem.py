"""Tests for the intra-node shared-memory reduction strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import make_bundle
from repro.core.api import run_serial
from repro.core.shmem import ShmemStrategy, run_threaded
from repro.errors import ReductionError


def chunks_for(key, total_units=2048, chunk_units=128, **params):
    bundle = make_bundle(key, total_units, **params)
    out = []
    for start in range(0, total_units, chunk_units):
        block = bundle.block_fn(start, chunk_units, start)
        out.append(bundle.schema.encode(block))
    return bundle, out


@pytest.mark.parametrize("strategy", list(ShmemStrategy))
@pytest.mark.parametrize("key", ["histogram", "wordcount", "knn"])
def test_all_strategies_agree_with_serial(strategy, key):
    bundle, chunks = chunks_for(key)
    serial = run_serial(bundle.app, chunks, units_per_group=100)
    result, stats = run_threaded(
        bundle.app, chunks, threads=4, strategy=strategy, units_per_group=100
    )
    if isinstance(serial, np.ndarray):
        np.testing.assert_array_equal(result, serial)
    else:
        assert result == serial
    assert stats.strategy is strategy
    assert stats.threads == 4


def test_replication_holds_threads_copies():
    bundle, chunks = chunks_for("histogram", bins=64)
    _, repl = run_threaded(bundle.app, chunks, threads=4,
                           strategy=ShmemStrategy.FULL_REPLICATION)
    _, lock = run_threaded(bundle.app, chunks, threads=4,
                           strategy=ShmemStrategy.FULL_LOCKING)
    assert repl.robj_copies == 4
    assert lock.robj_copies == 1
    assert repl.robj_bytes > lock.robj_bytes
    assert repl.lock_acquisitions == 0
    assert lock.lock_acquisitions == len(chunks)


def test_chunk_merge_locks_once_per_chunk():
    bundle, chunks = chunks_for("wordcount", vocabulary=64)
    _, stats = run_threaded(bundle.app, chunks, threads=3,
                            strategy=ShmemStrategy.CHUNK_MERGE)
    assert stats.lock_acquisitions == len(chunks)
    assert stats.robj_copies == 4  # shared + one scratch per thread


def test_single_thread_all_strategies_equal():
    bundle, chunks = chunks_for("histogram", bins=16)
    results = {
        s: run_threaded(bundle.app, chunks, threads=1, strategy=s)[0]
        for s in ShmemStrategy
    }
    base = results[ShmemStrategy.FULL_REPLICATION]
    for value in results.values():
        np.testing.assert_array_equal(value, base)


def test_invalid_thread_count():
    bundle, chunks = chunks_for("histogram")
    with pytest.raises(ReductionError):
        run_threaded(bundle.app, chunks, threads=0)
