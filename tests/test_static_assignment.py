"""Tests for the static-assignment ablation baseline."""

from __future__ import annotations

import pytest

from repro.bench.configs import env_config
from repro.cli import main
from repro.sim.simulation import CloudBurstSimulation, simulate

SCALE = 0.03


def run(env, static, app="knn", seed=2011):
    config = env_config(app, env, scale=SCALE, seed=seed)
    return CloudBurstSimulation(config, static_assignment=static).run()


def test_static_processes_every_job():
    report = run("env-50/50", static=True)
    assert report.total_jobs == 960
    report.validate()


def test_static_split_is_even_when_balanced():
    report = run("env-50/50", static=True)
    jobs = [c.jobs_processed for c in report.clusters.values()]
    assert abs(jobs[0] - jobs[1]) <= 8  # round-robin deal, group-size quanta


def test_static_disables_rate_matching_under_skew():
    pooled = run("env-17/83", static=False)
    static = run("env-17/83", static=True)
    # The static deal cannot shift work away from the WAN-bound cluster.
    assert static.makespan > pooled.makespan * 1.02
    # Static still deals stolen (remote) jobs up front — accounting holds.
    assert static.total_jobs == 960


def test_static_deterministic():
    a = run("env-33/67", static=True)
    b = run("env-33/67", static=True)
    assert a.makespan == b.makespan


def test_static_single_cluster_equivalent():
    """With one cluster there is nothing to balance: static == pooling up
    to control-plane timing (the static run skips head round-trips)."""
    pooled = run("env-local", static=False)
    static = run("env-local", static=True)
    assert static.total_jobs == pooled.total_jobs == 960
    assert static.makespan == pytest.approx(pooled.makespan, rel=0.05)


def test_trace_cli_command(capsys):
    code = main(["--scale", "0.02", "trace", "knn", "env-50/50",
                 "--width", "30"])
    assert code == 0
    out = capsys.readouterr().out
    assert "makespan" in out
    assert "w000" in out
    assert "idle fraction" in out
