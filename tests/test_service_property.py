"""Property tests for JobService concurrency invariants.

Every example runs on a :class:`~repro.clock.FakeClock` with stub
executors, so hypothesis can explore hundreds of tenant/weight/sequence
shapes without one real sleep. The invariants pinned here:

* fair-share dispatch matches registered weights within a constant
  per-tenant slack while every tenant is backlogged;
* ``max_pending`` and ``max_active`` quotas are never exceeded, and
  admission rejects exactly at the boundary;
* ``cancel()`` is idempotent — true at most once, cancelled runs never
  execute, everything else completes;
* after ``drain()``/``shutdown()`` no service or middleware thread
  survives and every admitted run is terminal.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FakeClock, JobService, RunState, TenantSpec
from repro.errors import AdmissionError, RunCancelledError
from repro.facade import RunResult

DATASET = None  # stub executors ignore the dataset entirely


def instant_executor(record: list | None = None):
    """Executes in zero time; optionally records (tenant, app) order."""

    def execute(app, dataset, config):
        if record is not None:
            record.append(app)
        return RunResult(value=app, mode="stub", wall_seconds=0.0)

    return execute


def weights_strategy():
    return st.lists(
        st.integers(min_value=1, max_value=8), min_size=2, max_size=4
    )


# -- fairness ----------------------------------------------------------------


@settings(deadline=None, max_examples=60)
@given(weights=weights_strategy(), backlog=st.integers(4, 10))
def test_dispatch_ratio_tracks_weights_while_backlogged(weights, backlog):
    clock = FakeClock()
    order: list[str] = []
    service = JobService(clock=clock, executor=instant_executor(order))
    tenants = [f"t{i}" for i in range(len(weights))]
    for name, weight in zip(tenants, weights):
        service.register(TenantSpec(name, weight=weight))
    for i in range(backlog):
        for name in tenants:
            service.submit(name, DATASET, tenant=name)
    service.drain()
    service.shutdown()
    clock.close()

    # Window where every tenant provably still had work queued.
    total = sum(weights)
    window = max(
        len(tenants), backlog * total // max(weights) - len(tenants)
    )
    prefix = order[:window]
    for name, weight in zip(tenants, weights):
        expected = window * weight / total
        got = prefix.count(name)
        assert abs(got - expected) <= len(tenants), (
            f"{name} (weight {weight}) got {got} of {window} dispatches, "
            f"expected ~{expected:.1f}"
        )


# -- quotas ------------------------------------------------------------------


@settings(deadline=None, max_examples=60)
@given(
    max_pending=st.integers(1, 4),
    attempts=st.integers(1, 10),
)
def test_max_pending_never_exceeded_and_rejects_at_boundary(
    max_pending, attempts
):
    clock = FakeClock()
    service = JobService(clock=clock, executor=instant_executor())
    service.register(TenantSpec("t", max_pending=max_pending))
    admitted = 0
    for i in range(attempts):
        backlog = service.stats()["tenants"]["t"]["queued"]
        assert backlog <= max_pending
        if backlog >= max_pending:
            try:
                service.submit(f"a{i}", DATASET, tenant="t")
            except AdmissionError:
                pass
            else:
                raise AssertionError("admission past max_pending")
        else:
            service.submit(f"a{i}", DATASET, tenant="t")
            admitted += 1
    assert admitted == min(attempts, max_pending)
    service.shutdown(cancel_pending=True)
    clock.close()


@settings(deadline=None, max_examples=15)
@given(
    max_active=st.integers(1, 2),
    workers=st.integers(2, 4),
    runs=st.integers(3, 8),
)
def test_max_active_quota_never_exceeded_under_workers(
    max_active, workers, runs
):
    clock = FakeClock()
    gauge_lock = threading.Lock()
    active = {"now": 0, "peak": 0}

    def execute(app, dataset, config):
        with gauge_lock:
            active["now"] += 1
            active["peak"] = max(active["peak"], active["now"])
        clock.sleep(0.5)
        with gauge_lock:
            active["now"] -= 1
        return RunResult(value=app, mode="stub", wall_seconds=0.5)

    service = JobService(workers=workers, clock=clock, executor=execute)
    service.register(TenantSpec("t", max_active=max_active))
    handles = [
        service.submit(f"a{i}", DATASET, tenant="t") for i in range(runs)
    ]
    for handle in handles:
        assert handle.result(timeout=10_000).value is not None
    service.shutdown()
    clock.close()
    assert active["peak"] <= max_active
    assert active["now"] == 0


# -- cancellation ------------------------------------------------------------


@settings(deadline=None, max_examples=60)
@given(
    ops=st.lists(
        st.one_of(
            st.none(),  # submit
            st.integers(0, 14),  # cancel handle[i % submitted], twice
        ),
        min_size=1,
        max_size=15,
    )
)
def test_cancel_idempotent_and_cancelled_runs_never_execute(ops):
    clock = FakeClock()
    executed: list[str] = []
    service = JobService(clock=clock, executor=instant_executor(executed))
    handles = []
    cancelled_ids = set()
    for op in ops:
        if op is None:
            handles.append(
                service.submit(f"a{len(handles)}", DATASET)
            )
        elif handles:
            handle = handles[op % len(handles)]
            first = handle.cancel()
            second = handle.cancel()
            assert second is False, "second cancel returned True"
            if first:
                cancelled_ids.add(handle.run_id)
                assert handle.status().state is RunState.CANCELLED
    service.drain()
    service.shutdown()
    clock.close()

    for handle in handles:
        state = handle.status().state
        assert state.terminal
        if handle.run_id in cancelled_ids:
            assert state is RunState.CANCELLED
            try:
                handle.result()
            except RunCancelledError:
                pass
            else:
                raise AssertionError("cancelled run returned a result")
        else:
            assert state is RunState.DONE
    # Exactly the non-cancelled submissions executed, no more, no less.
    assert len(executed) == len(handles) - len(cancelled_ids)


# -- drain hygiene -----------------------------------------------------------


def _service_threads() -> list[str]:
    return [
        t.name
        for t in threading.enumerate()
        if t.name.startswith(
            ("head", "master:", "slave:", "service-worker")
        )
    ]


@settings(deadline=None, max_examples=15)
@given(
    workers=st.integers(0, 3),
    weights=weights_strategy(),
    runs=st.integers(1, 8),
    cancel_pending=st.booleans(),
)
def test_drain_leaves_no_orphans_and_all_runs_terminal(
    workers, weights, runs, cancel_pending
):
    clock = FakeClock()

    def execute(app, dataset, config):
        clock.sleep(0.1)
        return RunResult(value=app, mode="stub", wall_seconds=0.1)

    service = JobService(workers=workers, clock=clock, executor=execute)
    tenants = [f"t{i}" for i in range(len(weights))]
    for name, weight in zip(tenants, weights):
        service.register(TenantSpec(name, weight=weight))
    handles = [
        service.submit(f"a{i}", DATASET, tenant=tenants[i % len(tenants)])
        for i in range(runs)
    ]
    service.shutdown(cancel_pending=cancel_pending)
    leftover = _service_threads()
    clock.close()

    assert not leftover, f"threads survived shutdown: {leftover}"
    states = [h.status().state for h in handles]
    assert all(state.terminal for state in states)
    if not cancel_pending:
        assert all(state is RunState.DONE for state in states)
    stats = service.stats()
    assert stats["queued"] == 0 and stats["running"] == 0
    assert stats["stopped"] is True
