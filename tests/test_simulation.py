"""Integration tests for the end-to-end cloud-bursting simulation.

These run the paper's configurations at reduced data scale (same 960-job
structure, smaller chunks) so the whole file executes in seconds, and
check the *accounting invariants* and *qualitative shapes* rather than
absolute times.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import env_config, figure4_configs
from repro.config import CLOUD_SITE, LOCAL_SITE
from repro.errors import SimulationError
from repro.sim.calibration import PAPER_CALIBRATION
from repro.sim.simulation import CloudBurstSimulation, simulate

SCALE = 0.05  # 960 jobs of 6.4 MB instead of 128 MB


@pytest.fixture(scope="module")
def knn_hybrid():
    return simulate(env_config("knn", "env-50/50", scale=SCALE))


def test_every_job_processed_once(knn_hybrid):
    assert knn_hybrid.total_jobs == 960


def test_accounting_invariants(knn_hybrid):
    report = knn_hybrid
    report.validate()
    for cluster in report.clusters.values():
        assert cluster.total == pytest.approx(report.makespan, rel=1e-9)
        assert cluster.mean_processing > 0
        assert cluster.mean_retrieval > 0
        assert cluster.sync >= 0
        assert cluster.processing_end <= cluster.combine_done <= cluster.robj_arrival
    assert report.global_reduction >= 0


def test_simulation_deterministic():
    a = simulate(env_config("knn", "env-33/67", scale=SCALE))
    b = simulate(env_config("knn", "env-33/67", scale=SCALE))
    assert a.makespan == b.makespan
    assert a.events_processed == b.events_processed
    assert {n: c.jobs_processed for n, c in a.clusters.items()} == {
        n: c.jobs_processed for n, c in b.clusters.items()
    }


def test_seed_changes_outcome_slightly():
    a = simulate(env_config("knn", "env-33/67", scale=SCALE, seed=1))
    b = simulate(env_config("knn", "env-33/67", scale=SCALE, seed=2))
    assert a.makespan != b.makespan
    # But not wildly: same configuration, same resources.
    assert abs(a.makespan - b.makespan) / a.makespan < 0.2


def test_single_cluster_baselines_have_no_idle_or_transfer():
    local = simulate(env_config("knn", "env-local", scale=SCALE))
    assert set(local.clusters) == {"local-cluster"}
    cluster = local.cluster("local-cluster")
    assert cluster.idle == 0.0
    assert cluster.jobs_stolen == 0
    # Single-cluster global reduction is merge-only (no WAN push).
    assert local.global_reduction < 0.1

    cloud = simulate(env_config("knn", "env-cloud", scale=SCALE))
    assert set(cloud.clusters) == {"cloud-cluster"}
    assert cloud.cluster("cloud-cluster").jobs_stolen == 0


def test_stealing_grows_with_skew():
    stolen = {}
    for env in ("env-50/50", "env-33/67", "env-17/83"):
        report = simulate(env_config("knn", env, scale=SCALE))
        local = report.cluster("local-cluster")
        stolen[env] = local.jobs_stolen
    assert stolen["env-50/50"] <= stolen["env-33/67"] <= stolen["env-17/83"]
    assert stolen["env-17/83"] > 0


def test_cloud_cluster_never_counts_local_steals_in_hybrid():
    """In hybrid knn runs the cloud side has ample S3 data of its own."""
    report = simulate(env_config("knn", "env-17/83", scale=SCALE))
    assert report.cluster("cloud-cluster").jobs_stolen == 0


def test_pagerank_global_reduction_dominated_by_robj_transfer():
    knn = simulate(env_config("knn", "env-50/50", scale=SCALE))
    pagerank = simulate(env_config("pagerank", "env-50/50", scale=SCALE))
    assert pagerank.global_reduction > 100 * knn.global_reduction
    # ~300 MB at the WAN per-flow rate: tens of seconds.
    assert 10.0 < pagerank.global_reduction < 120.0


def test_unassigned_jobs_detected():
    config = env_config("knn", "env-local", scale=SCALE)
    sim = CloudBurstSimulation(config)
    # Sanity: a full run assigns everything (no exception).
    report = sim.run()
    assert report.total_jobs == 960


def test_scalability_monotone():
    prev = None
    for name, config in figure4_configs("kmeans", scale=SCALE).items():
        report = simulate(config)
        if prev is not None:
            assert report.makespan < prev
        prev = report.makespan


def test_ec2_variability_increases_spread():
    calm = PAPER_CALIBRATION.with_changes(
        cloud_variability=PAPER_CALIBRATION.local_variability
    )
    jittery = PAPER_CALIBRATION
    config = env_config("kmeans", "env-cloud", scale=SCALE)
    calm_report = simulate(config, calm)
    jittery_report = simulate(config, jittery)
    # More per-job variance -> larger end-of-run barrier (sync).
    assert (
        jittery_report.cluster("cloud-cluster").sync
        >= calm_report.cluster("cloud-cluster").sync
    )
