"""Tests for the Generalized Reduction programming API surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import GeneralizedReductionApp, run_serial
from repro.core.reduction import ScalarReduction
from repro.errors import ReductionError


class SummingApp(GeneralizedReductionApp):
    """Minimal app: sum of float64 records."""

    name = "summing"

    def create_reduction_object(self) -> ScalarReduction:
        return ScalarReduction("sum")

    def local_reduction(self, robj, units):
        robj.add(float(np.sum(units)))

    def decode_chunk(self, raw: bytes):
        return np.frombuffer(raw, dtype=np.float64)


def chunk_of(values):
    return np.asarray(values, dtype=np.float64).tobytes()


def test_run_serial_sums_all_chunks():
    app = SummingApp()
    chunks = [chunk_of([1, 2, 3]), chunk_of([4, 5]), chunk_of([])]
    assert run_serial(app, chunks) == 15.0


def test_unit_groups_cover_everything_in_views():
    app = SummingApp()
    units = np.arange(10, dtype=np.float64)
    groups = list(app.unit_groups(units, 4))
    assert [len(g) for g in groups] == [4, 4, 2]
    assert np.concatenate(groups).tolist() == units.tolist()
    # Views, not copies.
    assert groups[0].base is units


def test_unit_groups_rejects_bad_size():
    app = SummingApp()
    with pytest.raises(ReductionError):
        list(app.unit_groups(np.zeros(3), 0))


def test_group_size_does_not_change_result():
    app = SummingApp()
    chunks = [chunk_of(range(100))]
    results = {run_serial(app, chunks, units_per_group=g) for g in (1, 7, 64, 1000)}
    assert results == {4950.0}


def test_default_global_reduction_merges():
    app = SummingApp()
    parts = []
    for vals in ([1.0, 2.0], [3.0]):
        robj = app.create_reduction_object()
        app.local_reduction(robj, np.asarray(vals))
        parts.append(robj)
    assert app.global_reduction(parts).value() == 6.0


def test_finalize_default_extracts_value():
    app = SummingApp()
    robj = app.create_reduction_object()
    robj.add(3.5)
    assert app.finalize(robj) == 3.5
