"""Property-based tests for the chunk cache and range planning.

Hypothesis drives arbitrary put/get workloads against
:class:`~repro.cache.ChunkCache` and arbitrary splits through
:func:`~repro.storage.retrieval.plan_ranges`, pinning the invariants the
rest of the stack leans on:

* the cache never holds more bytes than its budget, no matter the
  insertion order or sizes;
* every ``get`` is either a hit or a miss — the counters conserve;
* a value that fits always round-trips immediately after its ``put``;
* a range plan covers ``[offset, offset+nbytes)`` exactly once, with
  monotone offsets and at most one byte of size skew between parts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ChunkCache
from repro.storage.retrieval import plan_ranges

# Keys are small ints, values are byte strings sized independently of the
# declared nbytes so the accounting (which trusts nbytes) is what's tested.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "get"]),
        st.integers(0, 15),  # key space small enough to force collisions
        st.integers(1, 600),  # nbytes
    ),
    max_size=80,
)


@settings(deadline=None, max_examples=200)
@given(capacity=st.integers(1, 1024), ops=_ops)
def test_cache_never_exceeds_budget(capacity, ops):
    cache = ChunkCache(capacity)
    for op, key, nbytes in ops:
        if op == "put":
            cache.put(key, b"x", nbytes=nbytes)
        else:
            cache.get(key)
        assert cache.bytes_used <= capacity


@settings(deadline=None, max_examples=200)
@given(capacity=st.integers(1, 1024), ops=_ops)
def test_cache_hit_miss_conservation(capacity, ops):
    cache = ChunkCache(capacity)
    gets = 0
    for op, key, nbytes in ops:
        if op == "put":
            cache.put(key, b"x", nbytes=nbytes)
        else:
            gets += 1
            cache.get(key)
    assert cache.stats.hits + cache.stats.misses == gets
    # Every byte the budget holds was inserted and never double-counted.
    assert cache.stats.insertions >= len(cache)


@settings(deadline=None, max_examples=200)
@given(
    capacity=st.integers(1, 4096),
    prefill=_ops,
    key=st.integers(100, 110),  # disjoint from the prefill key space
    payload=st.binary(min_size=0, max_size=256),
)
def test_cache_put_then_get_round_trips(capacity, prefill, key, payload):
    cache = ChunkCache(capacity)
    for op, k, nbytes in prefill:
        if op == "put":
            cache.put(k, b"x", nbytes=nbytes)
        else:
            cache.get(k)
    nbytes = max(len(payload), 1)
    cache.put(key, payload, nbytes=nbytes)
    if nbytes <= capacity:
        # Fits: the put must stick, and the get must return the very bytes.
        assert cache.get(key) == payload
    else:
        # Oversized entries are rejected outright, never partially stored.
        assert cache.get(key) is None
        assert cache.stats.rejected >= 1


@settings(deadline=None, max_examples=300)
@given(
    offset=st.integers(0, 2**40),
    nbytes=st.integers(0, 100_000),
    parts=st.integers(1, 64),
)
def test_plan_ranges_exact_coverage(offset, nbytes, parts):
    plans = plan_ranges(offset, nbytes, parts)
    # Exact byte coverage: contiguous, starts at offset, ends at offset+nbytes.
    cursor = offset
    for plan in plans:
        assert plan.offset == cursor
        assert plan.length > 0
        cursor += plan.length
    assert cursor == offset + nbytes
    assert len(plans) == (min(parts, nbytes) if nbytes else 0)


@settings(deadline=None, max_examples=300)
@given(
    offset=st.integers(0, 2**40),
    nbytes=st.integers(1, 100_000),
    parts=st.integers(1, 64),
)
def test_plan_ranges_monotone_and_balanced(offset, nbytes, parts):
    plans = plan_ranges(offset, nbytes, parts)
    offsets = [p.offset for p in plans]
    assert offsets == sorted(offsets)
    sizes = [p.length for p in plans]
    assert max(sizes) - min(sizes) <= 1  # at most one byte of skew
    # Larger parts come first (the remainder spreads from the front).
    assert sizes == sorted(sizes, reverse=True)
