"""Unit and end-to-end tests for the elastic-bursting subsystem.

Covers the vocabulary (:class:`~repro.scale.ScaleDecision`,
:class:`~repro.options.ScaleOptions`, :class:`~repro.scale.RevocationSpec`),
the pure :class:`~repro.scale.Autoscaler` decision table, the
:class:`~repro.scale.SpotRevoker` fault hook, and the real runtime's
dynamic attach/detach/revocation path — chaos in, bit-identical results
out, every slave accounted for. The hypothesis invariant battery lives
in ``test_scale_property.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import RunConfig, run
from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    PlacementSpec,
)
from repro.core.api import run_serial
from repro.data.dataset import DatasetReader, build_dataset
from repro.errors import ConfigurationError, SpotRevocation
from repro.obs.events import EventLog
from repro.options import ScaleOptions
from repro.runtime.driver import CloudBurstingRuntime
from repro.scale import Autoscaler, RevocationSpec, ScaleDecision, SpotRevoker
from repro.storage.objectstore import ObjectStore

DATASET = DatasetSpec(
    total_bytes=32768 * 8, num_files=4, chunk_bytes=256 * 8, record_bytes=8
)


def materialize(app_key="histogram", dataset=DATASET, **params):
    bundle = make_bundle(app_key, dataset.total_units, seed=2011, **params)
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        dataset, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    return bundle, index, stores


def sample(**overrides):
    """A minimal RunSample-shaped namespace for driving the controller."""
    from repro.obs.live import _derive

    raw = {
        "jobs_total": 100,
        "jobs_done": 10,
        "pool_depth": 50,
        "in_flight": 4,
        "workers": 4,
        "workers_busy": 4,
    }
    time = overrides.pop("time", 10.0)
    raw.update(overrides)
    return _derive(raw, time)


# -- vocabulary --------------------------------------------------------------


def test_scale_decision_validation():
    assert ScaleDecision("none").count == 0
    assert ScaleDecision("add", 2).count == 2
    with pytest.raises(ConfigurationError, match="unknown scale action"):
        ScaleDecision("explode", 1)
    with pytest.raises(ConfigurationError, match="cannot carry a count"):
        ScaleDecision("none", 3)
    with pytest.raises(ConfigurationError, match="positive count"):
        ScaleDecision("remove", 0)


def test_scale_options_validation_and_enabled():
    assert not ScaleOptions().enabled
    assert ScaleOptions(autoscale=True).enabled
    assert ScaleOptions(revocation="rate=0.1").enabled
    # An inert revocation spec does not enable the machinery.
    assert not ScaleOptions(revocation="rate=0").enabled
    # The string form is normalized to the parsed spec.
    opts = ScaleOptions(revocation="rate=0.05,seed=7,provision=30")
    assert opts.revocation == RevocationSpec(
        rate=0.05, seed=7, provision_seconds=30.0
    )
    for bad in (
        dict(min_slaves=0),
        dict(min_slaves=4, max_slaves=2),
        dict(deadline=0),
        dict(budget=-1),
        dict(interval=0),
        dict(damping=-0.5),
        dict(dollars_per_slave_hour=-1),
    ):
        with pytest.raises(ConfigurationError):
            ScaleOptions(**bad)


def test_revocation_spec_parse_grammar():
    spec = RevocationSpec.parse("rate=0.2, seed=13, provision=2.5")
    assert spec == RevocationSpec(rate=0.2, seed=13, provision_seconds=2.5)
    assert RevocationSpec.parse("").rate == 0.0
    assert RevocationSpec.parse(spec.describe()) == spec
    with pytest.raises(ConfigurationError, match="expected key=value"):
        RevocationSpec.parse("rate")
    with pytest.raises(ConfigurationError, match="bad rate"):
        RevocationSpec.parse("rate=lots")
    with pytest.raises(ConfigurationError, match="seed must be an integer"):
        RevocationSpec.parse("seed=x")
    with pytest.raises(ConfigurationError, match="unknown revocation clause"):
        RevocationSpec.parse("chaos=1")
    with pytest.raises(ConfigurationError, match="must be in"):
        RevocationSpec(rate=1.5)


def test_revocation_draw_is_pure_and_seeded():
    spec = RevocationSpec(rate=0.3, seed=42)
    schedule = [(s, j) for s in range(4) for j in range(50) if spec.draw(s, j)]
    assert schedule  # 30% over 200 draws revokes someone
    assert schedule == [
        (s, j) for s in range(4) for j in range(50) if spec.draw(s, j)
    ]
    # A different seed gives a different schedule; rate 0 gives none.
    other = RevocationSpec(rate=0.3, seed=43)
    assert schedule != [
        (s, j) for s in range(4) for j in range(50) if other.draw(s, j)
    ]
    assert not any(
        RevocationSpec(rate=0.0).draw(s, j) for s in range(4) for j in range(50)
    )


# -- the controller decision table -------------------------------------------


def test_bound_repairs_bypass_damping():
    ctl = Autoscaler(min_slaves=2, max_slaves=4, damping=100.0)
    # Force a recent opposite action so damping would normally suppress.
    ctl.observe(sample(time=1.0, pool_depth=5, workers_busy=4), 3)
    d = ctl.observe(sample(time=1.1), 1)  # revocation pushed below floor
    assert (d.action, d.count) == ("add", 1)
    d = ctl.observe(sample(time=1.2), 6)
    assert (d.action, d.count) == ("remove", 2)


def test_controller_idles_without_signal():
    ctl = Autoscaler()
    assert ctl.observe(sample(jobs_done=100), 2).reason == "run complete"
    assert "no completion-rate signal" in ctl.observe(
        sample(time=0.0, jobs_done=0), 2
    ).reason


def test_deadline_pressure_adds_and_comfort_removes():
    ctl = Autoscaler(min_slaves=1, max_slaves=4, deadline=20.0, damping=0.0)
    # 10 done in 10s -> eta 90s, 10s left: add.
    d = ctl.observe(sample(time=10.0, jobs_done=10), 2)
    assert (d.action, d.count) == ("add", 1)
    # 90 done in 10s -> eta ~1.1s, 10s left: comfortably ahead, release.
    ctl2 = Autoscaler(min_slaves=1, max_slaves=4, deadline=20.0, damping=0.0)
    d = ctl2.observe(sample(time=10.0, jobs_done=90), 2)
    assert (d.action, d.count) == ("remove", 1)
    # On track (eta between 0.5x and 1x of remaining): steady.
    ctl3 = Autoscaler(min_slaves=1, max_slaves=4, deadline=20.0, damping=0.0)
    d = ctl3.observe(sample(time=10.0, jobs_done=60), 2)
    assert d.action == "none"


def test_deadline_add_respects_backlog_cap_and_budget():
    # No backlog beyond the fleet: adding buys nothing.
    ctl = Autoscaler(deadline=20.0, damping=0.0)
    d = ctl.observe(sample(time=10.0, jobs_done=10, pool_depth=0, in_flight=2), 2)
    assert d.action == "none" and "cannot add" in d.reason
    # At the cap: no add.
    ctl = Autoscaler(max_slaves=2, deadline=20.0, damping=0.0)
    assert ctl.observe(sample(time=10.0, jobs_done=10), 2).action == "none"
    # Unaffordable projection: no add.
    ctl = Autoscaler(deadline=20.0, budget=1e-9, damping=0.0)
    d = ctl.observe(sample(time=10.0, jobs_done=10), 1)
    assert d.action == "none"


def test_budget_high_water_sheds_to_floor():
    ctl = Autoscaler(min_slaves=1, max_slaves=8, budget=1.0, damping=0.0)
    ctl.dollars_spent = 0.95  # past the 0.9 high-water mark
    d = ctl.observe(sample(time=10.0, jobs_done=10), 5)
    assert (d.action, d.count) == ("remove", 4)
    assert "pegging to floor" in d.reason


def test_budget_only_mode_buys_throughput_within_projection():
    ctl = Autoscaler(budget=100.0, damping=0.0)
    d = ctl.observe(sample(time=10.0, jobs_done=10, pool_depth=9), 2)
    assert (d.action, d.count) == ("add", 1)
    # Empty backlog: steady.
    ctl2 = Autoscaler(budget=100.0, damping=0.0)
    d = ctl2.observe(sample(time=10.0, jobs_done=10, pool_depth=0), 2)
    assert d.action == "none"


def test_pure_load_mode_tracks_backlog_and_idleness():
    ctl = Autoscaler(damping=0.0)
    d = ctl.observe(
        sample(time=10.0, jobs_done=10, pool_depth=9, workers_busy=4), 2
    )
    assert (d.action, d.count) == ("add", 1)
    d = ctl.observe(
        sample(time=20.0, jobs_done=20, pool_depth=0, workers_busy=1), 3
    )
    assert (d.action, d.count) == ("remove", 1)


def test_damping_suppresses_reversal_but_not_repeat():
    ctl = Autoscaler(deadline=20.0, damping=5.0)
    d = ctl.observe(sample(time=10.0, jobs_done=10), 2)
    assert d.action == "add"
    # 1s later the run is suddenly ahead: the remove is damped...
    d = ctl.observe(sample(time=11.0, jobs_done=99), 3)
    assert d.action == "none" and "damped" in d.reason
    # ...but a same-direction repeat inside the window is allowed.
    d = ctl.observe(sample(time=12.0, jobs_done=12), 3)
    assert d.action == "add"
    # After the window the reversal goes through.
    d = ctl.observe(sample(time=18.0, jobs_done=99), 3)
    assert d.action == "remove"


def test_cost_accrual_integrates_fleet_seconds():
    ctl = Autoscaler(dollars_per_slave_hour=3600.0)  # $1 per slave-second
    ctl.observe(sample(time=0.0, jobs_done=0), 2)
    ctl.observe(sample(time=10.0), 2)  # 2 slaves x 10s = $20
    ctl.observe(sample(time=15.0), 4)  # 4 slaves x 5s = $20
    assert ctl.dollars_spent == pytest.approx(40.0)
    assert ctl.finalize(20.0, 1) == pytest.approx(45.0)
    # Time never runs backward through the ledger.
    ctl.finalize(15.0, 100)
    assert ctl.dollars_spent == pytest.approx(45.0)
    assert ctl.projected_spend(2, 10.0) == pytest.approx(45.0 + 20.0)


def test_controller_config_validation():
    for bad in (
        dict(min_slaves=0),
        dict(min_slaves=3, max_slaves=1),
        dict(deadline=-1),
        dict(budget=0),
        dict(damping=-1),
        dict(dollars_per_slave_hour=-0.1),
    ):
        with pytest.raises(ConfigurationError):
            Autoscaler(**bad)


# -- the revoker hook --------------------------------------------------------


class _Job:
    def __init__(self, job_id):
        self.job_id = job_id


def test_revoker_raises_once_per_victim_and_keeps_a_floor():
    trace = EventLog()
    revoker = SpotRevoker(RevocationSpec(rate=1.0, seed=1), trace=trace)
    revoker.admit(0)
    revoker.admit(1)
    with pytest.raises(SpotRevocation):
        revoker.hook(0, _Job(7))
    # The victim is gone; further jobs on its id are ignored.
    revoker.hook(0, _Job(8))
    # rate=1.0 would revoke slave 1 too, but it is the last survivor.
    revoker.hook(1, _Job(9))
    assert revoker.revoked == 1
    events = trace.of_kind("revocation")
    assert len(events) == 1 and events[0].worker == 0
    assert "job 7" in events[0].detail


def test_revoker_retire_stops_tracking():
    revoker = SpotRevoker(RevocationSpec(rate=1.0, seed=1))
    revoker.admit(0)
    revoker.admit(1)
    revoker.retire(0)
    revoker.hook(0, _Job(1))  # retired: no roll, no raise
    assert revoker.revoked == 0


# -- end-to-end: the real runtime --------------------------------------------


def _scaled_runtime(scale, *, trace=None, seed=2011):
    bundle, index, stores = materialize()
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
        scale=scale, trace=trace, seed=seed, join_timeout=60.0,
    )
    return bundle, index, stores, runtime


def test_autoscale_run_is_bit_identical_and_attaches_slaves():
    scale = ScaleOptions(
        autoscale=True, budget=50.0, max_slaves=4, interval=0.01
    )
    trace = EventLog()
    bundle, index, stores, runtime = _scaled_runtime(scale, trace=trace)
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    result = runtime.run()
    np.testing.assert_array_equal(result.value, oracle)
    t = result.telemetry
    assert t.slaves_added == len(trace.of_kind("provision"))
    assert t.dollars_spent >= 0.0
    assert len(trace.of_kind("scale_up")) >= t.slaves_added


def test_revocation_run_is_bit_identical_and_accounted():
    scale = ScaleOptions(revocation="rate=0.15,seed=5")
    trace = EventLog()
    bundle, index, stores, runtime = _scaled_runtime(scale, trace=trace)
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    result = runtime.run()
    np.testing.assert_array_equal(result.value, oracle)
    t = result.telemetry
    assert t.slaves_revoked == len(trace.of_kind("revocation"))
    # Revocations are spot events, not generic failures, in the ledger.
    assert t.slaves_failed == 0
    # Exactly one of the two cloud slaves hits its seeded ordinal; the
    # keep-one floor then protects the survivor.
    assert t.slaves_revoked == 1
    assert t.jobs_reexecuted > 0


def test_revocation_telemetry_is_deterministic():
    def one_run():
        scale = ScaleOptions(revocation="rate=0.3,seed=9")
        _, _, _, runtime = _scaled_runtime(scale)
        result = runtime.run()
        return (
            result.telemetry.slaves_revoked,
            np.asarray(result.value).tobytes(),
        )

    first = one_run()
    assert first == one_run()
    # Which slave falls first is a scheduling race, but the count is not:
    # one revocation, then the keep-one floor holds.
    assert first[0] == 1


def test_facade_scale_validation_rules():
    scale = ScaleOptions(autoscale=True)
    with pytest.raises(ConfigurationError, match="serial mode has no slaves"):
        RunConfig(mode="serial", scale=scale).validate()
    with pytest.raises(ConfigurationError, match="cloud_cores"):
        RunConfig(
            mode="runtime", scale=scale,
            compute=ComputeSpec(local_cores=2, cloud_cores=0),
        ).validate()
    with pytest.raises(ConfigurationError, match="autoscaler targets"):
        RunConfig(
            mode="runtime", scale=ScaleOptions(deadline=10.0)
        ).validate()


def test_facade_simulate_autoscale_reports_fleet_changes():
    config = RunConfig(
        mode="simulate",
        scale=ScaleOptions(autoscale=True, budget=50.0, max_slaves=6,
                           interval=0.2),
        seed=2011,
    )
    big = DatasetSpec(
        total_bytes=131072 * 8, num_files=8, chunk_bytes=512 * 8, record_bytes=8
    )
    result = run("histogram", big, config)
    again = run("histogram", big, config)
    assert result.sim_report.slaves_added > 0
    assert result.sim_report.slaves_added == again.sim_report.slaves_added
    assert result.sim_report.dollars_spent == again.sim_report.dollars_spent
