"""Property tests for PageRank's stochastic invariants on random graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.pagerank import PageRankApp
from repro.baselines.serial import pagerank_reference


@st.composite
def random_graph(draw):
    n_pages = draw(st.integers(2, 30))
    n_edges = draw(st.integers(1, 120))
    src = draw(
        st.lists(st.integers(0, n_pages - 1), min_size=n_edges,
                 max_size=n_edges)
    )
    dst = draw(
        st.lists(st.integers(0, n_pages - 1), min_size=n_edges,
                 max_size=n_edges)
    )
    edges = np.stack(
        [np.asarray(src, np.int32), np.asarray(dst, np.int32)], axis=1
    )
    return n_pages, edges


@settings(deadline=None, max_examples=60)
@given(random_graph(), st.floats(0.05, 0.95))
def test_rank_mass_conserved(graph, damping):
    """One power iteration preserves total rank mass for ANY graph
    (including dangling pages and self-loops)."""
    n_pages, edges = graph
    outdeg = np.bincount(edges[:, 0], minlength=n_pages).astype(np.int64)
    app = PageRankApp(n_pages, outdeg, damping=damping)
    robj = app.create_reduction_object()
    app.local_reduction(robj, edges)
    ranks = app.finalize(robj)
    assert ranks.sum() == pytest.approx(1.0, rel=1e-9)
    assert (ranks > 0).all()


@settings(deadline=None, max_examples=30)
@given(random_graph(), st.integers(1, 10))
def test_app_matches_reference_over_iterations(graph, iterations):
    n_pages, edges = graph
    outdeg = np.bincount(edges[:, 0], minlength=n_pages).astype(np.int64)
    app = PageRankApp(n_pages, outdeg)
    ranks = None
    for _ in range(iterations):
        robj = app.create_reduction_object()
        app.local_reduction(robj, edges)
        ranks = app.finalize(robj)
        app.update(ranks)
    expected = pagerank_reference(edges, n_pages, iterations=iterations)
    np.testing.assert_allclose(ranks, expected, rtol=1e-10)


@settings(deadline=None, max_examples=30)
@given(random_graph(), st.integers(2, 5))
def test_edge_partitioning_invariance(graph, parts):
    """Splitting the edge list across workers and merging equals the
    single-worker pass — the distribution contract for graphs."""
    from repro.core.reduction import merge_all

    n_pages, edges = graph
    outdeg = np.bincount(edges[:, 0], minlength=n_pages).astype(np.int64)
    app = PageRankApp(n_pages, outdeg)
    whole = app.create_reduction_object()
    app.local_reduction(whole, edges)
    robjs = []
    for piece in np.array_split(edges, parts):
        robj = app.create_reduction_object()
        if len(piece):
            app.local_reduction(robj, piece)
        robjs.append(robj)
    merged = merge_all(robjs)
    np.testing.assert_allclose(
        app.finalize(whole), app.finalize(merged), rtol=1e-12
    )
