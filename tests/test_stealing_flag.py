"""Tests for the allow_stealing switch (co-location-only baseline)."""

from __future__ import annotations

import pytest

from repro.bench.configs import env_config
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.index import build_index
from repro.core.scheduler import HeadScheduler
from repro.sim.simulation import simulate

from conftest import small_spec

SCALE = 0.03


def test_scheduler_refuses_remote_jobs_when_disabled():
    spec = small_spec(record_bytes=4, files=4)
    index = build_index(spec, PlacementSpec(local_fraction=0.5))
    sched = HeadScheduler(index.jobs(), MiddlewareTuning(allow_stealing=False))
    sched.register_cluster("local-cluster", LOCAL_SITE)
    sched.register_cluster("cloud-cluster", CLOUD_SITE)
    # Drain the local cluster's own files.
    local_jobs = 0
    while True:
        group = sched.request_jobs("local-cluster", 4)
        if group is None:
            break
        assert group.site == LOCAL_SITE
        local_jobs += len(group)
    assert local_jobs == 8  # its two files only
    assert sched.clusters["local-cluster"].jobs_stolen == 0
    # Remote jobs remain for the cloud cluster.
    assert not sched.exhausted
    cloud = sched.request_jobs("cloud-cluster", 4)
    assert cloud is not None and cloud.site == CLOUD_SITE


def test_simulation_without_stealing_still_completes():
    config = env_config(
        "knn", "env-33/67", scale=SCALE,
        tuning=MiddlewareTuning(allow_stealing=False),
    )
    report = simulate(config)
    assert report.total_jobs == 960
    assert report.total_stolen == 0
    # The data-poor cluster finishes early and idles.
    local = report.cluster("local-cluster")
    assert local.idle > 0
    report.validate()


def test_no_stealing_is_slower_under_skew():
    base = simulate(env_config("knn", "env-17/83", scale=SCALE))
    frozen = simulate(env_config(
        "knn", "env-17/83", scale=SCALE,
        tuning=MiddlewareTuning(allow_stealing=False),
    ))
    assert frozen.makespan > base.makespan
