"""Protocol-level tests for head and master nodes (driven manually, no
full runtime)."""

from __future__ import annotations

import pytest

from repro.config import LOCAL_SITE, MiddlewareTuning, PlacementSpec
from repro.core.index import build_index
from repro.core.reduction import ScalarReduction, from_bytes
from repro.core.scheduler import HeadScheduler
from repro.errors import RuntimeProtocolError
from repro.runtime.head import HeadNode
from repro.runtime.master import MasterNode
from repro.runtime.messages import (
    JobRequest,
    ReductionUpload,
    SlaveJobRequest,
    SlaveJobDone,
    SlaveReduction,
)
from repro.runtime.transport import Mailbox

from conftest import small_spec


def make_head(files=2, chunks=2, clusters=("local-cluster",)):
    spec = small_spec(record_bytes=4, files=files, chunks_per_file=chunks)
    index = build_index(spec, PlacementSpec(local_fraction=1.0))
    scheduler = HeadScheduler(index.jobs(), MiddlewareTuning())
    for name in clusters:
        scheduler.register_cluster(name, LOCAL_SITE)
    return HeadNode(scheduler, list(clusters))


def test_head_serves_requests_and_merges():
    head = make_head(files=2, chunks=4)
    head.start()
    reply = Mailbox("reply")
    head.inbox.post(JobRequest(cluster="local-cluster", reply_to=reply, max_jobs=4))
    group = reply.take(timeout=2.0).group
    assert group is not None and len(group) == 4
    robj = ScalarReduction("sum", 5.0)
    head.inbox.post(ReductionUpload(cluster="local-cluster", blob=robj.to_bytes()))
    result = head.join(timeout=5.0)
    assert from_bytes(result.blob).value() == 5.0
    assert result.clusters_reported == ("local-cluster",)


def test_head_rejects_duplicate_upload():
    head = make_head(clusters=("a", "b"))
    head.start()
    blob = ScalarReduction("sum", 1.0).to_bytes()
    head.inbox.post(ReductionUpload(cluster="a", blob=blob))
    head.inbox.post(ReductionUpload(cluster="a", blob=blob))
    with pytest.raises(RuntimeProtocolError, match="twice"):
        head.join(timeout=5.0)


def test_head_rejects_unknown_cluster_and_message():
    head = make_head()
    head.start()
    head.inbox.post(ReductionUpload(cluster="stranger", blob=b""))
    with pytest.raises(RuntimeProtocolError, match="unknown cluster"):
        head.join(timeout=5.0)

    head2 = make_head()
    head2.start()
    head2.inbox.post("garbage")
    with pytest.raises(RuntimeProtocolError, match="unexpected message"):
        head2.join(timeout=5.0)


def test_head_requires_clusters_and_start():
    with pytest.raises(RuntimeProtocolError):
        make_head(clusters=())
    head = make_head()
    with pytest.raises(RuntimeProtocolError):
        head.join()


def test_master_end_to_end_protocol():
    """Drive a master with two fake slaves against a real head."""
    head = make_head(files=2, chunks=2, clusters=("local-cluster",))
    head.start()
    master = MasterNode("local-cluster", LOCAL_SITE, head.inbox, num_slaves=2)
    master.start()

    replies = [Mailbox("s0"), Mailbox("s1")]
    done_jobs = []
    robjs = [ScalarReduction("sum", 0.0), ScalarReduction("sum", 0.0)]
    active = [0, 1]
    while active:
        for sid in list(active):
            master.inbox.post(SlaveJobRequest(slave_id=sid, reply_to=replies[sid]))
            job = replies[sid].take(timeout=2.0).job
            if job is None:
                master.inbox.post(SlaveReduction(slave_id=sid, robj=robjs[sid]))
                active.remove(sid)
                continue
            done_jobs.append(job.job_id)
            robjs[sid].add(1.0)
            master.inbox.post(SlaveJobDone(slave_id=sid, job=job))
    master.join(timeout=5.0)
    result = head.join(timeout=5.0)
    assert sorted(done_jobs) == [0, 1, 2, 3]
    assert from_bytes(result.blob).value() == 4.0  # one unit per job


def test_master_validation():
    head = make_head()
    with pytest.raises(RuntimeProtocolError):
        MasterNode("c", LOCAL_SITE, head.inbox, num_slaves=0)
    master = MasterNode("c", LOCAL_SITE, head.inbox, num_slaves=1)
    with pytest.raises(RuntimeProtocolError):
        master.join()
