"""Tests for placement strategies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import CLOUD_SITE, LOCAL_SITE, PlacementSpec
from repro.core.partition import (
    interleaved_placement,
    placement_summary,
    prefix_placement,
    random_placement,
)
from repro.errors import ConfigurationError


def test_prefix_placement():
    sites = prefix_placement(6, PlacementSpec(0.5))
    assert sites == [LOCAL_SITE] * 3 + [CLOUD_SITE] * 3


def test_interleaved_spreads_local_files():
    sites = interleaved_placement(8, PlacementSpec(0.5))
    assert sites.count(LOCAL_SITE) == 4
    # No run of three consecutive local files when interleaving 50%.
    joined = "".join("L" if s == LOCAL_SITE else "C" for s in sites)
    assert "LLL" not in joined


def test_random_placement_seeded():
    a = random_placement(16, PlacementSpec(0.25), seed=3)
    b = random_placement(16, PlacementSpec(0.25), seed=3)
    c = random_placement(16, PlacementSpec(0.25), seed=4)
    assert a == b
    assert a.count(LOCAL_SITE) == 4
    assert c.count(LOCAL_SITE) == 4


def test_summary_counts_and_validates():
    summary = placement_summary([LOCAL_SITE, CLOUD_SITE, CLOUD_SITE])
    assert summary == {LOCAL_SITE: 1, CLOUD_SITE: 2}
    assert placement_summary([]) == {LOCAL_SITE: 0, CLOUD_SITE: 0}
    with pytest.raises(ConfigurationError):
        placement_summary(["mars"])


@given(files=st.integers(1, 40), fraction=st.floats(0.0, 1.0))
def test_all_strategies_honor_fraction(files, fraction):
    spec = PlacementSpec(fraction)
    expected = spec.local_files(files)
    for strategy in (prefix_placement, interleaved_placement, random_placement):
        sites = strategy(files, spec)
        assert len(sites) == files
        assert sites.count(LOCAL_SITE) == expected
