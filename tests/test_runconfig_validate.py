"""``RunConfig.validate()``: every cross-knob conflict fails fast.

Construction rejects individually-bad values; ``validate()`` rejects
*combinations* where each knob is legal but together they silently do
nothing or would only fail deep inside an engine. One test per conflict,
each asserting the message is actionable (names the knob and a fix).
"""

from __future__ import annotations

import pytest

from repro import (
    CacheOptions,
    MonitorOptions,
    ResilienceOptions,
    RunConfig,
    SyncOptions,
)
from repro.errors import ConfigurationError
from repro.resilience import RetryPolicy


def test_validate_returns_self_on_a_clean_config():
    config = RunConfig(
        mode="runtime",
        cache=CacheOptions(bytes=1 << 20, prefetch=True),
        sync=SyncOptions(encoding="delta", topology="tree", stream=True),
        monitor=MonitorOptions(interval=0.5),
    )
    assert config.validate() is config


def test_validate_default_config_is_clean():
    config = RunConfig()
    assert config.validate() is config


def test_prefetch_without_cache_conflicts():
    config = RunConfig(cache=CacheOptions(prefetch=True))
    with pytest.raises(ConfigurationError, match="prefetch.*cache_bytes=0"):
        config.validate()


def test_prefetch_outside_runtime_conflicts():
    config = RunConfig(
        mode="serial", cache=CacheOptions(bytes=1 << 20, prefetch=True)
    )
    with pytest.raises(ConfigurationError, match="prefetch.*'serial'"):
        config.validate()


def test_sync_in_serial_mode_conflicts():
    config = RunConfig(mode="serial", sync=SyncOptions(encoding="delta"))
    with pytest.raises(ConfigurationError, match="serial mode has no masters"):
        config.validate()


def test_sim_only_sync_ratio_in_runtime_conflicts():
    config = RunConfig(
        mode="runtime", sync=SyncOptions(topology="tree", ratio=0.5)
    )
    with pytest.raises(ConfigurationError, match="sync_ratio.*simulator"):
        config.validate()


def test_stream_with_star_dense_defaults_conflicts():
    config = RunConfig(mode="runtime", sync=SyncOptions(stream=True))
    with pytest.raises(
        ConfigurationError, match="sync_stream.*star/dense"
    ):
        config.validate()


def test_monitor_in_serial_mode_conflicts():
    config = RunConfig(mode="serial", monitor=MonitorOptions(interval=1.0))
    with pytest.raises(
        ConfigurationError, match="monitor_interval.*no samples"
    ):
        config.validate()


def test_converge_with_single_iteration_conflicts():
    config = RunConfig(converge=0.01)
    with pytest.raises(ConfigurationError, match="converge.*iterations"):
        config.validate()


def test_retry_in_simulate_mode_conflicts():
    config = RunConfig(
        mode="simulate",
        resilience=ResilienceOptions(retry=RetryPolicy()),
    )
    with pytest.raises(ConfigurationError, match="never retries"):
        config.validate()


def test_process_slaves_outside_runtime_conflicts():
    config = RunConfig(mode="simulate", slave_mode="process")
    with pytest.raises(
        ConfigurationError, match="slave_mode='process'.*'simulate'"
    ):
        config.validate()


def test_validate_reports_every_conflict_at_once():
    config = RunConfig(
        mode="serial",
        cache=CacheOptions(prefetch=True),
        monitor=MonitorOptions(interval=1.0),
        converge=0.1,
    )
    with pytest.raises(ConfigurationError) as excinfo:
        config.validate()
    message = str(excinfo.value)
    # prefetch raises two findings (no cache + wrong mode) plus monitor
    # and converge — all reported together, not first-wins.
    assert message.count("\n  - ") >= 4


def test_unknown_mode_and_slave_mode_fail_at_construction():
    with pytest.raises(ConfigurationError, match="unknown run mode"):
        RunConfig(mode="warp")
    with pytest.raises(ConfigurationError, match="unknown slave_mode"):
        RunConfig(slave_mode="fiber")
