"""FairShareQueue: stride fairness, priorities, discard, eligibility."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jobpool import FairShareQueue
from repro.errors import SchedulingError


def drain(queue: FairShareQueue, count: int | None = None) -> list[str]:
    """Dispatch until empty (or ``count`` items), returning tenant order."""
    order = []
    while count is None or len(order) < count:
        picked = queue.take()
        if picked is None:
            break
        order.append(picked[0])
    return order


def test_weighted_split_is_exact_while_all_backlogged():
    queue = FairShareQueue()
    queue.register("a", 4)
    queue.register("b", 2)
    queue.register("c", 1)
    for i in range(40):
        for tenant in "abc":
            queue.push(tenant, f"{tenant}{i}")
    counts = Counter(drain(queue, count=70))
    assert counts == {"a": 40, "b": 20, "c": 10}


def test_equal_weights_round_robin():
    queue = FairShareQueue()
    queue.register("x")
    queue.register("y")
    for i in range(6):
        queue.push("x", i)
        queue.push("y", i)
    order = drain(queue)
    # Never two consecutive dispatches to the same tenant while both wait.
    assert all(a != b for a, b in zip(order, order[1:]))


def test_priority_orders_within_tenant_fifo_on_ties():
    queue = FairShareQueue()
    queue.register("t")
    queue.push("t", "low", priority=0)
    queue.push("t", "first-high", priority=9)
    queue.push("t", "mid", priority=5)
    queue.push("t", "second-high", priority=9)
    items = [queue.take()[1] for _ in range(4)]
    assert items == ["first-high", "second-high", "mid", "low"]


def test_discard_skips_entry_and_backlog_reflects_it():
    queue = FairShareQueue()
    queue.register("t")
    queue.push("t", "keep1")
    token = queue.push("t", "dropme", priority=10)
    queue.push("t", "keep2")
    assert queue.backlog("t") == 3
    queue.discard(token)
    assert queue.backlog("t") == 2
    assert len(queue) == 2
    assert [queue.take()[1] for _ in range(2)] == ["keep1", "keep2"]
    assert queue.take() is None


def test_eligibility_veto_defers_without_burning_share():
    queue = FairShareQueue()
    queue.register("big", 10)
    queue.register("small", 1)
    for i in range(4):
        queue.push("big", f"b{i}")
        queue.push("small", f"s{i}")
    # Veto 'big' entirely: 'small' serves, big's stride state untouched.
    assert queue.take(eligible=lambda t: t == "small")[0] == "small"
    # Veto lifted: big still has its full weight advantage.
    order = [queue.take()[0] for _ in range(4)]
    assert order.count("big") >= 3


def test_idle_tenant_does_not_bank_credit():
    queue = FairShareQueue()
    queue.register("steady", 1)
    queue.register("bursty", 1)
    for i in range(20):
        queue.push("steady", i)
    for _ in range(10):
        assert queue.take()[0] == "steady"
    # 'bursty' was idle for 10 dispatches; on arrival it must share 50/50,
    # not receive 10 consecutive dispatches of "owed" credit.
    for i in range(20):
        queue.push("bursty", i)
    window = [queue.take()[0] for _ in range(10)]
    assert Counter(window) == {"steady": 5, "bursty": 5}


@settings(deadline=None, max_examples=100)
@given(
    w_before=st.integers(1, 8),
    w_after=st.integers(1, 8),
    other=st.integers(1, 8),
    window=st.integers(8, 64),
)
def test_midstream_weight_change_takes_effect_immediately(
    w_before, w_after, other, window
):
    """Re-registering a tenant mid-stream re-weights it: the dispatch
    ratio over the next window tracks the *new* weights, regardless of
    history under the old ones."""
    queue = FairShareQueue()
    queue.register("shifty", w_before)
    queue.register("steady", other)
    depth = 2 * window + 16
    for i in range(depth):
        queue.push("shifty", f"x{i}")
        queue.push("steady", f"y{i}")
    drain(queue, count=window)  # burn history under the old weights
    queue.register("shifty", w_after)  # idempotent re-registration
    assert queue.weight_of("shifty") == w_after
    counts = Counter(drain(queue, count=window))
    # Both stayed backlogged the whole window, so the split must match
    # the new ratio to within stride-scheduler rounding: a few quanta of
    # pass-value skew at the re-registration edge, never O(window) drift.
    expected = window * w_after / (w_after + other)
    assert abs(counts["shifty"] - expected) <= 4.5


def test_unregistered_tenant_and_bad_weight_rejected():
    queue = FairShareQueue()
    with pytest.raises(SchedulingError, match="never registered"):
        queue.push("ghost", 1)
    with pytest.raises(SchedulingError, match="weight must be positive"):
        queue.register("t", 0)


def test_empty_queue_take_returns_none_and_counters_track():
    queue = FairShareQueue()
    queue.register("t", 2)
    assert queue.take() is None
    queue.push("t", "x")
    queue.take()
    assert queue.pushed == {"t": 1}
    assert queue.dispatched == {"t": 1}
    assert queue.weight_of("t") == 2
    assert queue.tenants == ("t",)
