"""Tests for node/cluster specs and the EC2 variability model."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.cluster.cluster import ClusterSpec, cloud_cluster, local_cluster
from repro.cluster.node import EC2_M1_LARGE, LOCAL_XEON, NodeSpec
from repro.cluster.variability import VariabilityModel
from repro.config import CLOUD_SITE, LOCAL_SITE
from repro.errors import ConfigurationError
from repro.units import GB, MB


def test_paper_node_specs():
    assert LOCAL_XEON.cores == 8
    assert LOCAL_XEON.memory_bytes == 6 * GB
    assert EC2_M1_LARGE.cores == 2
    assert EC2_M1_LARGE.memory_bytes == 7 * GB + 512 * MB


def test_node_validation():
    with pytest.raises(ConfigurationError):
        NodeSpec("x", cores=0, memory_bytes=1, cache_bytes=1)
    with pytest.raises(ConfigurationError):
        NodeSpec("x", cores=1, memory_bytes=0, cache_bytes=1)
    with pytest.raises(ConfigurationError):
        NodeSpec("x", cores=1, memory_bytes=1, cache_bytes=1, core_speed=0)


def test_chunk_and_group_sizing():
    # Chunk bounded by per-core share of memory.
    assert LOCAL_XEON.max_chunk_bytes(0.5) == int(6 * GB * 0.5 / 8)
    with pytest.raises(ConfigurationError):
        LOCAL_XEON.max_chunk_bytes(0.0)
    # Unit group bounded by cache.
    assert LOCAL_XEON.units_per_group(record_bytes=16) == (4 * MB // 2) // 16
    with pytest.raises(ConfigurationError):
        LOCAL_XEON.units_per_group(record_bytes=0)


def test_cluster_builders_round_up_nodes():
    campus = local_cluster(active_cores=20)
    assert campus.site == LOCAL_SITE
    assert campus.num_nodes == 3  # ceil(20/8)
    assert campus.active_cores == 20
    assert campus.slave_count() == 20
    ec2 = cloud_cluster(active_cores=22)
    assert ec2.site == CLOUD_SITE
    assert ec2.num_nodes == 11  # ceil(22/2)
    assert ec2.total_cores == 22


def test_cluster_validation():
    with pytest.raises(ConfigurationError):
        ClusterSpec("x", LOCAL_SITE, LOCAL_XEON, num_nodes=1, active_cores=9)
    with pytest.raises(ConfigurationError):
        ClusterSpec("x", LOCAL_SITE, LOCAL_XEON, num_nodes=0, active_cores=1)


def test_variability_deterministic_per_worker():
    model = VariabilityModel(sigma=0.2, seed=9)
    a = [model.sampler(1)() for _ in range(5)]
    b = [model.sampler(1)() for _ in range(5)]
    c = [model.sampler(2)() for _ in range(5)]
    assert a == b
    assert a != c
    assert all(x > 0 for x in a)


def test_variability_zero_sigma_is_exact():
    draw = VariabilityModel(sigma=0.0).sampler(3)
    assert [draw() for _ in range(4)] == [1.0] * 4


def test_variability_statistics():
    model = VariabilityModel(sigma=0.1, seed=1)
    draw = model.sampler(0)
    samples = [draw() for _ in range(4000)]
    # Median ~1 for a lognormal with mu=0.
    assert statistics.median(samples) == pytest.approx(1.0, rel=0.05)
    assert statistics.fmean(samples) == pytest.approx(
        model.expected_multiplier(), rel=0.05
    )


def test_negative_sigma_rejected():
    with pytest.raises(ConfigurationError):
        VariabilityModel(sigma=-0.1)
