"""Executable version of docs/TUTORIAL.md — keeps the tutorial honest.

Each test mirrors one tutorial step verbatim (modulo smaller sizes); if
an API change breaks the walkthrough, this file fails before a user hits
it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CLOUD_SITE,
    LOCAL_SITE,
    CloudBurstingRuntime,
    ComputeSpec,
    DatasetSpec,
    GeneralizedReductionApp,
    PlacementSpec,
    env_config,
    simulate,
)
from repro.core.reduction import ScalarReduction
from repro.data import build_dataset, mixture_values
from repro.data.dataset import DatasetReader
from repro.data.records import VALUE_SCHEMA
from repro.storage import ObjectStore


class AboveThreshold(GeneralizedReductionApp):
    """The tutorial's step-1 application."""

    name = "above"

    def __init__(self, threshold: float):
        self.threshold = threshold

    def create_reduction_object(self):
        return ScalarReduction("sum")

    def local_reduction(self, robj, units):
        robj.add(float((units.ravel() > self.threshold).sum()))

    def decode_chunk(self, raw):
        return VALUE_SCHEMA.decode(raw)


@pytest.fixture(scope="module")
def tutorial_dataset():
    spec = DatasetSpec(total_bytes=4096 * 8, num_files=8,
                       chunk_bytes=128 * 8, record_bytes=8)
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(local_fraction=0.25), VALUE_SCHEMA,
        lambda start, count, i: mixture_values(count, seed=start),
        stores,
    )
    return spec, index, stores


def test_step2_dataset_built_with_checksums(tutorial_dataset):
    spec, index, stores = tutorial_dataset
    assert index.num_chunks == spec.num_chunks
    assert all(e.checksum is not None for e in index.files)
    assert DatasetReader(index, stores).verify_all() == 8


def test_step3_run_with_bursting(tutorial_dataset):
    spec, index, stores = tutorial_dataset
    runtime = CloudBurstingRuntime(
        AboveThreshold(0.5), index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
    )
    result = runtime.run()
    # Cross-check against a direct NumPy pass.
    decoded = np.concatenate(
        [VALUE_SCHEMA.decode(c)
         for c in DatasetReader(index, stores).read_all_chunks()]
    ).ravel()
    assert result.value == float((decoded > 0.5).sum())
    # Local cluster (25% of data, 50% of cores) must have stolen.
    local = result.telemetry.clusters["local-cluster"]
    assert local.stolen > 0


def test_step4_simulate_at_testbed_scale():
    report = simulate(env_config("histogram", "env-33/67", scale=0.02))
    assert report.total_jobs == 960
    assert report.makespan > 0
    report.validate()
