"""Tests for unit helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    GB,
    KB,
    MB,
    TB,
    fmt_bytes,
    fmt_percent,
    fmt_rate,
    fmt_seconds,
    parse_size,
)


def test_constants():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB
    assert TB == 1024 * GB


@pytest.mark.parametrize(
    "value,expected",
    [
        (0, "0 B"),
        (999, "999 B"),
        (KB, "1.0 KB"),
        (128 * MB, "128.0 MB"),
        (120 * GB, "120.0 GB"),
        (2 * TB, "2.0 TB"),
        (-KB, "-1.0 KB"),
    ],
)
def test_fmt_bytes(value, expected):
    assert fmt_bytes(value) == expected


def test_fmt_seconds_matches_paper_precision():
    assert fmt_seconds(0.0721) == "0.072"
    assert fmt_seconds(96.067) == "96.1"
    assert fmt_seconds(9.9994) == "9.999"
    assert fmt_seconds(-3.5) == "-3.500"


def test_fmt_rate_and_percent():
    assert fmt_rate(550 * MB) == "550.0 MB/s"
    assert fmt_percent(0.1555) == "15.6%"


@pytest.mark.parametrize(
    "text,expected",
    [
        ("120GB", 120 * GB),
        ("128 MB", 128 * MB),
        ("1kb", KB),
        ("42", 42),
        ("1.5GB", int(1.5 * GB)),
        ("7B", 7),
    ],
)
def test_parse_size(text, expected):
    assert parse_size(text) == expected


def test_parse_size_rejects_garbage():
    with pytest.raises(ValueError):
        parse_size("twelve parsecs")


@given(st.integers(min_value=0, max_value=10 * TB))
def test_fmt_bytes_parse_roundtrip_order_of_magnitude(n):
    """Formatting then parsing stays within the rounding error of 1 decimal."""
    parsed = parse_size(fmt_bytes(n))
    assert abs(parsed - n) <= max(64, n * 0.06)
