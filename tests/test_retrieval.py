"""Tests for multi-threaded chunk retrieval."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.objectstore import ObjectStore
from repro.storage.retrieval import ChunkRetriever, plan_ranges


def test_plan_ranges_even_split():
    plans = plan_ranges(100, 10, 2)
    assert [(p.offset, p.length) for p in plans] == [(100, 5), (105, 5)]


def test_plan_ranges_remainder_spread():
    plans = plan_ranges(0, 10, 3)
    assert [p.length for p in plans] == [4, 3, 3]


def test_plan_ranges_fewer_parts_than_requested():
    assert len(plan_ranges(0, 2, 8)) == 2
    assert plan_ranges(0, 0, 4) == []


def test_plan_ranges_validation():
    with pytest.raises(StorageError):
        plan_ranges(0, -1, 2)
    with pytest.raises(StorageError):
        plan_ranges(0, 10, 0)


@given(
    offset=st.integers(0, 1000),
    nbytes=st.integers(0, 5000),
    parts=st.integers(1, 32),
)
def test_plan_ranges_exact_cover_property(offset, nbytes, parts):
    plans = plan_ranges(offset, nbytes, parts)
    cursor = offset
    for p in plans:
        assert p.offset == cursor
        assert p.length > 0
        cursor += p.length
    assert cursor == offset + nbytes
    if plans:
        lengths = [p.length for p in plans]
        assert max(lengths) - min(lengths) <= 1


def test_retriever_reassembles_in_order():
    store = ObjectStore()
    blob = bytes(range(256)) * 4
    store.put("k", blob)
    fetched = ChunkRetriever(store, threads=5).fetch("k", 100, 500)
    assert fetched == blob[100:600]
    assert store.stats.gets == 5


def test_retriever_single_thread_single_get():
    store = ObjectStore()
    store.put("k", b"abcdef")
    fetched = ChunkRetriever(store, threads=1).fetch("k", 1, 4)
    assert fetched == b"bcde"
    assert store.stats.gets == 1


def test_retriever_zero_bytes():
    store = ObjectStore()
    store.put("k", b"abc")
    assert ChunkRetriever(store, threads=3).fetch("k", 1, 0) == b""


def test_retriever_rejects_bad_threads():
    with pytest.raises(StorageError):
        ChunkRetriever(ObjectStore(), threads=0)
