"""Tests for SimReport JSON persistence and the runner helpers at
reduced scale."""

from __future__ import annotations

import json

import pytest

from repro.bench.configs import env_config
from repro.bench.experiments import (
    run_iterative_projection,
    run_stealing_ablation,
)
from repro.cli import main
from repro.errors import ConfigurationError, SimulationError
from repro.sim.metrics import SimReport
from repro.sim.simulation import simulate

SCALE = 0.03


@pytest.fixture(scope="module")
def report():
    return simulate(env_config("knn", "env-33/67", scale=SCALE))


def test_json_roundtrip(report):
    restored = SimReport.from_json(report.to_json())
    assert restored.makespan == report.makespan
    assert restored.global_reduction == report.global_reduction
    assert set(restored.clusters) == set(report.clusters)
    for name in report.clusters:
        assert (
            restored.clusters[name].jobs_stolen
            == report.clusters[name].jobs_stolen
        )
    restored.validate()


def test_json_is_plain_data(report):
    doc = json.loads(report.to_json())
    assert doc["app"] == "knn"
    assert doc["experiment"] == "env-33/67"
    assert isinstance(doc["clusters"], dict)


def test_malformed_report_rejected():
    with pytest.raises(SimulationError):
        SimReport.from_json("{not json")
    with pytest.raises(SimulationError):
        SimReport.from_json('{"app": "knn"}')


def test_cli_json_flag(capsys):
    code = main(["--scale", "0.02", "simulate", "knn", "env-50/50", "--json"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["experiment"] == "env-50/50"
    assert doc["makespan"] > 0


# -- runner helpers at reduced scale --------------------------------------------


def test_stealing_runner_structure():
    out = run_stealing_ablation("knn", ("env-17/83",), scale=SCALE)
    with_steal, without = out["env-17/83"]
    assert with_steal.total_stolen > 0
    assert without.total_stolen == 0
    assert without.makespan > with_steal.makespan


def test_iterative_projection_structure():
    result = run_iterative_projection("pagerank", "env-50/50", 3, scale=SCALE)
    assert len(result["hybrid_passes"]) == 3
    assert result["hybrid_total"] == pytest.approx(
        sum(r.makespan for r in result["hybrid_passes"])
    )
    assert result["robj_overhead"] > 0
    # Passes are reseeded: they differ.
    makespans = [r.makespan for r in result["hybrid_passes"]]
    assert len(set(makespans)) == 3
    with pytest.raises(ConfigurationError):
        run_iterative_projection("pagerank", iterations=0, scale=SCALE)
