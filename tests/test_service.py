"""JobService: submit/handle lifecycle, admission, fairness, drain.

Real-execution tests use tiny datasets through :func:`repro.run_direct`
(the default executor); scheduling-behavior tests inject stub executors
on a :class:`~repro.clock.FakeClock` so nothing sleeps for real.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

import repro
from repro import (
    DatasetSpec,
    FakeClock,
    JobService,
    MonitorOptions,
    RunConfig,
    RunState,
    TenantSpec,
)
from repro.errors import (
    AdmissionError,
    RunCancelledError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.facade import RunResult

DATASET = DatasetSpec(
    total_bytes=2048 * 4, num_files=4, chunk_bytes=512, record_bytes=4
)
SERIAL = RunConfig(mode="serial", seed=5)


def virtual_executor(clock: FakeClock, seconds: float = 1.0):
    """An executor that 'works' for virtual seconds and echoes its app."""

    def execute(app, dataset, config):
        clock.sleep(seconds)
        return RunResult(value=app, mode="stub", wall_seconds=seconds)

    return execute


# -- the facade wrapper -------------------------------------------------------


def test_run_is_equivalent_to_run_direct():
    via_service = repro.run("wordcount", DATASET, SERIAL)
    direct = repro.run_direct("wordcount", DATASET, SERIAL)
    assert via_service.value == direct.value
    assert via_service.mode == direct.mode == "serial"


def test_run_reraises_engine_errors_like_run_direct():
    from repro.errors import ConfigurationError

    bad = RunConfig(mode="serial", iterations=3)  # wordcount has no update()
    with pytest.raises(ConfigurationError, match="update"):
        repro.run_direct("wordcount", DATASET, bad)
    with pytest.raises(ConfigurationError, match="update"):
        repro.run("wordcount", DATASET, bad)


def test_run_stays_permissive_where_submit_validates():
    # prefetch-with-no-cache is a validate() conflict, but the legacy
    # facade accepted (and ignored) it — run() must keep doing so.
    permissive = RunConfig(
        mode="serial", cache=repro.CacheOptions(prefetch=True)
    )
    assert repro.run("wordcount", DATASET, permissive).value
    with JobService() as service:
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="prefetch"):
            service.submit("wordcount", DATASET, permissive)
        handle = service.submit(
            "wordcount", DATASET, permissive, validate=False
        )
        assert handle.result().value


# -- inline lifecycle ---------------------------------------------------------


def test_inline_submit_result_and_status_lifecycle():
    with JobService() as service:
        handle = service.submit("wordcount", DATASET, SERIAL)
        status = handle.status()
        assert status.state is RunState.QUEUED
        assert status.started_at is None and status.finished_at is None
        result = handle.result()
        assert result.value is not None
        status = handle.status()
        assert status.state is RunState.DONE
        assert status.finished_at >= status.started_at >= status.submitted_at
        assert handle.done()
        # Terminal handles answer forever, incl. via re-acquired handles.
        assert service.handle(handle.run_id).result().value is not None


def test_cancel_is_idempotent_and_only_true_once():
    with JobService() as service:
        handle = service.submit("wordcount", DATASET, SERIAL)
        assert handle.cancel() is True
        assert handle.cancel() is False
        assert handle.status().state is RunState.CANCELLED
        with pytest.raises(RunCancelledError):
            handle.result()
        # A finished run cannot be cancelled.
        done = service.submit("wordcount", DATASET, SERIAL)
        done.result()
        assert done.cancel() is False


def test_failed_run_reraises_original_exception_and_reports_error():
    def boom(app, dataset, config):
        raise ValueError("kaput")

    with JobService(executor=boom) as service:
        handle = service.submit("x", DATASET, SERIAL)
        with pytest.raises(ValueError, match="kaput"):
            handle.result()
        status = handle.status()
        assert status.state is RunState.FAILED
        assert "kaput" in status.error


def test_queued_ahead_counts_same_tenant_dispatch_order():
    with JobService() as service:
        low = service.submit("a", DATASET, SERIAL, priority=0)
        high = service.submit("b", DATASET, SERIAL, priority=5)
        later = service.submit("c", DATASET, SERIAL, priority=0)
        assert high.status().queued_ahead == 0
        assert low.status().queued_ahead == 1  # behind high
        assert later.status().queued_ahead == 2  # behind high and low


# -- admission control --------------------------------------------------------


def test_max_pending_quota_rejects_loudly():
    service = JobService()
    service.register(TenantSpec("t", max_pending=2))
    service.submit("a", DATASET, SERIAL, tenant="t")
    service.submit("b", DATASET, SERIAL, tenant="t")
    with pytest.raises(AdmissionError, match="max_pending"):
        service.submit("c", DATASET, SERIAL, tenant="t")
    # Other tenants are unaffected by t's quota.
    service.submit("d", DATASET, SERIAL, tenant="other")
    service.shutdown(cancel_pending=True)


def test_global_capacity_rejects_across_tenants():
    service = JobService(capacity=2)
    service.submit("a", DATASET, SERIAL, tenant="t1")
    service.submit("b", DATASET, SERIAL, tenant="t2")
    with pytest.raises(AdmissionError, match="capacity"):
        service.submit("c", DATASET, SERIAL, tenant="t3")
    service.shutdown(cancel_pending=True)


def test_cancel_frees_quota_and_capacity():
    service = JobService(capacity=1)
    service.register(TenantSpec("t", max_pending=1))
    first = service.submit("wordcount", DATASET, SERIAL, tenant="t")
    first.cancel()
    second = service.submit("wordcount", DATASET, SERIAL, tenant="t")
    assert second.result().value is not None
    service.shutdown()


def test_max_active_defers_but_never_rejects():
    clock = FakeClock()
    service = JobService(
        workers=2, clock=clock, executor=virtual_executor(clock)
    )
    service.register(TenantSpec("t", max_active=1))
    handles = [
        service.submit(f"app{i}", DATASET, SERIAL, tenant="t")
        for i in range(4)
    ]
    for handle in handles:
        assert handle.result(timeout=1000).value.startswith("app")
    # With max_active=1 on 2 workers the runs serialized: 4 virtual
    # seconds of work means the clock saw at least 4 virtual seconds.
    assert clock.monotonic() >= 4.0
    service.shutdown()
    clock.close()


def test_submitting_after_drain_or_shutdown_raises():
    service = JobService()
    service.drain()
    with pytest.raises(ServiceError, match="draining"):
        service.submit("a", DATASET, SERIAL)
    service.shutdown()
    with pytest.raises(ServiceError, match="stopped"):
        service.submit("a", DATASET, SERIAL)


# -- fairness with real scheduling (virtual time) -----------------------------


def test_weighted_fairness_on_fake_clock():
    clock = FakeClock()
    service = JobService(
        workers=1, clock=clock, executor=virtual_executor(clock)
    )
    service.register(TenantSpec("gold", weight=3))
    service.register(TenantSpec("bronze", weight=1))
    completion: list[str] = []
    handles = []
    for i in range(8):
        for tenant in ("gold", "bronze"):
            handles.append(
                service.submit(f"{tenant}-{i}", DATASET, SERIAL, tenant=tenant)
            )
    for handle in handles:
        handle.result(timeout=10_000)
    # Reconstruct dispatch order from started_at timestamps.
    order = sorted(
        (service.handle(h.run_id)._record() for h in handles),
        key=lambda run: run.started_at,
    )
    first_eight = [run.tenant for run in order[:8]]
    assert first_eight.count("gold") == 6  # 3:1 split while both backlogged
    service.shutdown()
    clock.close()


def test_priority_preempts_queue_order_within_tenant():
    clock = FakeClock()
    service = JobService(
        workers=1, clock=clock, executor=virtual_executor(clock)
    )
    low = service.submit("low", DATASET, SERIAL, priority=0)
    high = service.submit("high", DATASET, SERIAL, priority=10)
    low.result(timeout=1000)
    high.result(timeout=1000)
    low_run, high_run = low._record(), high._record()
    # 'high' was submitted later but dispatched first... unless the lone
    # worker grabbed 'low' before 'high' arrived — tolerate that race by
    # checking dispatch order only when both were queued together.
    if low_run.started_at > low_run.submitted_at:
        assert high_run.started_at <= low_run.started_at
    service.shutdown()
    clock.close()


# -- timeouts and streaming ---------------------------------------------------


def test_result_timeout_abandons_wait_not_work():
    clock = FakeClock()
    service = JobService(
        workers=1, clock=clock, executor=virtual_executor(clock, seconds=50.0)
    )
    handle = service.submit("slow", DATASET, SERIAL)
    with pytest.raises(ServiceTimeoutError, match="still"):
        handle.result(timeout=1.0)
    # The run survives the abandoned wait and completes.
    assert handle.result(timeout=10_000).value == "slow"
    service.shutdown()
    clock.close()


def test_stream_replays_monitor_samples_inline():
    config = RunConfig(
        mode="runtime", seed=5, monitor=MonitorOptions(interval=0.01)
    )
    with JobService() as service:
        handle = service.submit("wordcount", DATASET, config)
        streamed = list(handle.stream())
        assert streamed, "monitored run streamed no samples"
        assert streamed == handle.result().samples
        assert [s.time for s in streamed] == sorted(s.time for s in streamed)


def test_stream_tees_without_stealing_users_callback():
    seen: list = []
    config = RunConfig(
        mode="runtime",
        seed=5,
        monitor=MonitorOptions(interval=0.01, on_sample=seen.append),
    )
    with JobService() as service:
        handle = service.submit("wordcount", DATASET, config)
        streamed = list(handle.stream())
    assert seen == streamed


def test_stream_on_unmonitored_run_yields_nothing():
    with JobService() as service:
        handle = service.submit("wordcount", DATASET, SERIAL)
        assert list(handle.stream()) == []
        assert handle.status().state is RunState.DONE


# -- drain / shutdown hygiene -------------------------------------------------


def _middleware_threads() -> list[str]:
    return [
        t.name
        for t in threading.enumerate()
        if t.name.startswith(("head", "master:", "slave:", "service-worker"))
    ]


def test_drain_completes_backlog_and_leaves_no_orphan_threads():
    service = JobService(workers=2, name="hygiene")
    handles = [
        service.submit("wordcount", DATASET, SERIAL, tenant=f"t{i % 3}")
        for i in range(6)
    ]
    service.drain()
    for handle in handles:
        assert handle.status().state is RunState.DONE
    service.shutdown()
    leftover = _middleware_threads()
    assert not leftover, f"orphaned threads after shutdown: {leftover}"


def test_shutdown_cancel_pending_spares_nothing_queued():
    service = JobService()
    handles = [service.submit(f"a{i}", DATASET, SERIAL) for i in range(3)]
    service.shutdown(cancel_pending=True)
    assert all(h.status().state is RunState.CANCELLED for h in handles)
    # Idempotent.
    service.shutdown()


def test_runtime_runs_through_threaded_service_match_direct():
    direct = repro.run_direct(
        "histogram",
        DatasetSpec(
            total_bytes=2048 * 8, num_files=4, chunk_bytes=1024,
            record_bytes=8,
        ),
        RunConfig(mode="runtime", seed=5),
    )
    with JobService(workers=2) as service:
        handles = [
            service.submit(
                "histogram",
                DatasetSpec(
                    total_bytes=2048 * 8, num_files=4, chunk_bytes=1024,
                    record_bytes=8,
                ),
                RunConfig(mode="runtime", seed=5),
            )
            for _ in range(4)
        ]
        for handle in handles:
            np.testing.assert_array_equal(
                np.asarray(handle.result(timeout=60).value),
                np.asarray(direct.value),
            )
    assert not _middleware_threads()


def test_stats_snapshot_shape():
    service = JobService(capacity=10)
    service.register(TenantSpec("t", weight=2))
    service.submit("a", DATASET, SERIAL, tenant="t")
    stats = service.stats()
    assert stats["queued"] == 1 and stats["running"] == 0
    assert stats["tenants"]["t"]["weight"] == 2
    assert stats["tenants"]["t"]["queued"] == 1
    service.shutdown()
    assert service.stats()["stopped"] is True


# -- the journal on disk ------------------------------------------------------


def test_journal_corruption_reports_path_not_traceback(tmp_path):
    """A journal overwritten with garbage — textual or binary — surfaces
    as a ServiceError naming the file, never a raw decode traceback."""
    from repro.service import ServiceJournal

    path = tmp_path / "state.json"
    path.write_text("{not json", encoding="utf-8")
    journal = ServiceJournal(str(path))
    with pytest.raises(ServiceError, match="not valid JSON") as excinfo:
        journal.read()
    assert str(path) in str(excinfo.value)

    path.write_bytes(b"\xff\xfe\x00garbage\x80")  # invalid UTF-8
    with pytest.raises(ServiceError, match="not valid JSON") as excinfo:
        journal.read()
    assert str(path) in str(excinfo.value)

    path.write_text("[1, 2, 3]", encoding="utf-8")  # valid JSON, wrong shape
    with pytest.raises(ServiceError, match="must hold a JSON object"):
        journal.read()


# -- per-tenant scaling quotas ------------------------------------------------


def test_tenant_cloud_quota_clamps_scale_options():
    """A tenant's ``max_cloud_slaves`` caps how far its runs may burst:
    the dispatched config's ScaleOptions is clamped to the quota (both
    bounds), while unquota'd tenants run their config untouched."""
    from repro.options import ScaleOptions

    config = RunConfig(
        mode="runtime",
        scale=ScaleOptions(autoscale=True, min_slaves=3, max_slaves=8,
                           budget=5.0),
    )
    service = JobService()
    service.register(TenantSpec("capped", max_cloud_slaves=2))
    capped = service.submit("histogram", DATASET, config, tenant="capped")
    free = service.submit("histogram", DATASET, config, tenant="free")
    eff = service._exec_config(service._runs[capped.run_id])
    assert (eff.scale.max_slaves, eff.scale.min_slaves) == (2, 2)
    assert service._exec_config(service._runs[free.run_id]).scale.max_slaves == 8
    # The submitted config object itself is never mutated.
    assert config.scale.max_slaves == 8
    service.shutdown()
    with pytest.raises(ServiceError, match="max_cloud_slaves"):
        TenantSpec("bad", max_cloud_slaves=0)
