"""Property tests for the reduction-object wire codecs.

The contract pinned here (see :mod:`repro.core.wire`): decoding an
encoded object reproduces the sender's serialization *bit for bit* for
every ReductionObject subclass under every encoding x compression
combination — including delta chains, where both ends of a channel must
track the same baseline — and any truncated or corrupted payload is
rejected with :class:`~repro.errors.ReductionError`, never a stray
pickle/struct/zlib exception.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import wire
from repro.core.reduction import (
    ArrayReduction,
    DictReduction,
    ScalarReduction,
    StructReduction,
    TopKReduction,
)
from repro.core.sync import SyncCodec, SyncSpec
from repro.errors import ReductionError

COMPRESSIONS = [c for c in wire.COMPRESSIONS if c != "lz4" or wire.lz4_available()]

_FLOATS = st.floats(allow_nan=False, width=32).map(float)


@st.composite
def array_reductions(draw) -> ArrayReduction:
    dtype = draw(st.sampled_from(["<f8", "<f4", "<i8", "<i4", "<u2"]))
    # Integer arrays only use 'sum' (min/max identities are +/-inf).
    op = (
        draw(st.sampled_from(["sum", "min", "max"]))
        if dtype[1] == "f"
        else "sum"
    )
    n = draw(st.integers(1, 64))
    identity = ArrayReduction._IDENTITY[op]
    data = np.full(n, identity, dtype=np.dtype(dtype))
    # Sprinkle a few non-identity entries so sparse sometimes wins; keep
    # some arrays fully dense so the fallback path is exercised too.
    for _ in range(draw(st.integers(0, min(n, 8)))):
        idx = draw(st.integers(0, n - 1))
        if dtype[1] == "f":
            data[idx] = draw(_FLOATS)
        else:
            data[idx] = draw(st.integers(0, 60000))
    if draw(st.booleans()):
        data[:] = np.arange(n, dtype=np.dtype(dtype))
    return ArrayReduction(n, dtype=np.dtype(dtype), op=op, data=data)


@st.composite
def dict_reductions(draw) -> DictReduction:
    items = draw(
        st.dictionaries(st.text(max_size=6), st.integers(0, 1000), max_size=12)
    )
    return DictReduction("sum", items)


@st.composite
def topk_reductions(draw) -> TopKReduction:
    k = draw(st.integers(1, 8))
    n = draw(st.integers(0, 12))
    scores = np.array([draw(_FLOATS) for _ in range(n)], dtype=np.float64)
    ids = np.arange(n, dtype=np.int64)
    return TopKReduction(k, scores, ids)


@st.composite
def scalar_reductions(draw) -> ScalarReduction:
    return ScalarReduction(
        draw(st.sampled_from(["sum", "min", "max"])), draw(_FLOATS)
    )


@st.composite
def struct_reductions(draw) -> StructReduction:
    return StructReduction(
        {
            "arr": draw(array_reductions()),
            "count": draw(scalar_reductions()),
        }
    )


def reduction_objects():
    return st.one_of(
        array_reductions(),
        dict_reductions(),
        topk_reductions(),
        scalar_reductions(),
        struct_reductions(),
    )


@settings(deadline=None, max_examples=60)
@given(
    robj=reduction_objects(),
    encoding=st.sampled_from(wire.ENCODINGS),
    compress=st.sampled_from(COMPRESSIONS),
)
def test_round_trip_without_baseline(robj, encoding, compress):
    encoded = wire.encode(robj, encoding=encoding, compress=compress)
    assert wire.is_wire_blob(encoded.blob)
    decoded = wire.decode(encoded.blob)
    assert decoded.robj.to_bytes() == robj.to_bytes()
    assert decoded.dense == encoded.dense
    # The cost heuristic never ships a blob materially larger than dense.
    assert len(encoded.blob) <= len(encoded.dense) + wire._HEADER.size + 64


@settings(deadline=None, max_examples=40)
@given(
    pair=st.one_of(
        st.tuples(array_reductions(), array_reductions()),
        st.tuples(dict_reductions(), dict_reductions()),
        st.tuples(topk_reductions(), topk_reductions()),
        st.tuples(struct_reductions(), struct_reductions()),
    ),
    compress=st.sampled_from(COMPRESSIONS),
)
def test_delta_chain_is_bit_exact(pair, compress):
    """Two arbitrary objects sent back-to-back on one channel decode
    bit-exactly, whatever delta representation (lane diff, XOR, fallback
    to dense) the encoder lands on."""
    first, second = pair
    codec = SyncCodec(SyncSpec(encoding="delta", compress=compress))
    for robj in (first, second):
        blob = codec.encode("chan", robj).blob
        decoded = codec.decode("chan", blob)
        assert decoded.to_bytes() == robj.to_bytes()
    assert codec.stats.uploads == 2
    assert codec.stats.bytes_saved >= -2 * (wire._HEADER.size + 64)


def test_delta_shrinks_converging_uploads():
    """The iterative-workload story: near-identical successive objects
    produce tiny deltas once compressed."""
    rng = np.random.default_rng(7)
    base = rng.random(4096)
    codec = SyncCodec(SyncSpec(encoding="delta", compress="zlib"))
    codec.encode("chan", ArrayReduction(4096, data=base))
    second = codec.encode(
        "chan", ArrayReduction(4096, data=base + 1e-12)
    )
    assert second.encoding == "delta"
    assert len(second.blob) < len(second.dense) / 5


def test_sparse_beats_dense_on_mostly_identity_arrays():
    data = np.zeros(4096)
    data[7] = 42.0
    encoded = wire.encode(ArrayReduction(4096, data=data), encoding="sparse")
    assert encoded.encoding == "sparse"
    assert len(encoded.blob) < len(encoded.dense) / 10
    decoded = wire.decode(encoded.blob)
    assert decoded.robj.to_bytes() == encoded.dense


def test_sparse_preserves_negative_zero():
    data = np.zeros(64)
    data[3] = -0.0  # bitwise different from the +0.0 identity
    robj = ArrayReduction(64, data=data)
    encoded = wire.encode(robj, encoding="sparse")
    assert wire.decode(encoded.blob).robj.to_bytes() == robj.to_bytes()


def test_auto_picks_the_smallest_candidate():
    data = np.zeros(4096)
    data[1] = 1.0
    robj = ArrayReduction(4096, data=data)
    auto = wire.encode(robj, encoding="auto")
    explicit = min(
        (wire.encode(robj, encoding=e) for e in ("dense", "sparse")),
        key=lambda enc: len(enc.blob),
    )
    assert len(auto.blob) <= len(explicit.blob)


def test_legacy_envelope_is_accepted():
    robj = ScalarReduction("sum", 3.5)
    decoded = wire.decode(robj.to_bytes())
    assert decoded.encoding == "dense" and decoded.robj.value() == 3.5


def test_delta_without_baseline_is_rejected():
    robj = ArrayReduction(8, data=np.arange(8.0))
    baseline = wire.encode(robj, encoding="dense").dense
    blob = wire.encode(
        ArrayReduction(8, data=np.arange(8.0) + 1),
        encoding="delta",
        baseline=baseline,
    ).blob
    with pytest.raises(ReductionError, match="baseline"):
        wire.decode(blob)


@settings(deadline=None, max_examples=60)
@given(
    robj=reduction_objects(),
    encoding=st.sampled_from(["dense", "sparse"]),
    compress=st.sampled_from(COMPRESSIONS),
    cut=st.integers(0, 200),
)
def test_truncated_blobs_raise_reduction_error(robj, encoding, compress, cut):
    blob = wire.encode(robj, encoding=encoding, compress=compress).blob
    truncated = blob[: min(cut, len(blob) - 1)]
    try:
        decoded = wire.decode(truncated)
    except ReductionError:
        return
    # A truncation that still parses must not silently corrupt: the only
    # acceptable parse is one that kept the full original body.
    assert decoded.robj.to_bytes() == robj.to_bytes()


@settings(deadline=None, max_examples=60)
@given(
    robj=reduction_objects(),
    encoding=st.sampled_from(["dense", "sparse"]),
    compress=st.sampled_from(COMPRESSIONS),
    pos=st.integers(0, 10_000),
    flip=st.integers(1, 255),
)
def test_corrupted_blobs_never_leak_raw_exceptions(
    robj, encoding, compress, pos, flip
):
    blob = bytearray(wire.encode(robj, encoding=encoding, compress=compress).blob)
    blob[pos % len(blob)] ^= flip
    try:
        wire.decode(bytes(blob))
    except ReductionError:
        pass  # rejection is the expected outcome; anything else must not raise


def test_lz4_gating():
    robj = ArrayReduction(256, data=np.arange(256.0))
    if wire.lz4_available():
        encoded = wire.encode(robj, compress="lz4")
        assert wire.decode(encoded.blob).robj.to_bytes() == robj.to_bytes()
    else:
        with pytest.raises(ReductionError, match="lz4"):
            wire.encode(robj, compress="lz4")


def test_unknown_knobs_are_rejected():
    robj = ScalarReduction("sum", 1.0)
    with pytest.raises(ReductionError, match="encoding"):
        wire.encode(robj, encoding="huffman")
    with pytest.raises(ReductionError, match="compression"):
        wire.encode(robj, compress="zstd")


def test_unsupported_wire_version_is_rejected():
    blob = bytearray(wire.encode(ScalarReduction("sum", 1.0)).blob)
    blob[2] = 99  # version byte
    with pytest.raises(ReductionError, match="version"):
        wire.decode(bytes(blob))
