"""Fault-tolerance tests: slave crashes must not change results.

The recovery model (FREERIDE lineage): a dead slave's private reduction
object is lost, so the master re-executes *every* job that slave had
processed, on the surviving slaves. These tests inject deterministic
crashes and check (a) the final result still equals the no-fault oracle
and (b) the accounting reflects the recovery.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.api import run_serial
from repro.core.job import Job
from repro.core.jobpool import JobPool
from repro.core.job import JobGroup
from repro.data.dataset import DatasetReader, build_dataset
from repro.errors import SchedulingError, WorkerFailure
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore


def materialize(app_key="histogram", total_units=2048, **params):
    bundle = make_bundle(app_key, total_units, **params)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=total_units * rb,
        num_files=4,
        chunk_bytes=(total_units // 16) * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(spec, PlacementSpec(0.5), bundle.schema,
                          bundle.block_fn, stores)
    return bundle, index, stores


class CrashOnce:
    """Kill one specific slave after it has processed ``after`` jobs."""

    def __init__(self, victim: int, after: int):
        self.victim = victim
        self.after = after
        self.count = 0
        self.fired = False
        self._lock = threading.Lock()

    def __call__(self, slave_id: int, job) -> None:
        if slave_id != self.victim:
            return
        with self._lock:
            if self.fired:
                return
            self.count += 1
            if self.count > self.after:
                self.fired = True
                raise WorkerFailure(f"injected crash of slave {slave_id}")


def run_with_fault(bundle, index, stores, hook, cores=(2, 2)):
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=cores[0], cloud_cores=cores[1]),
        tuning=MiddlewareTuning(units_per_group=100),
        fault_hook=hook,
    )
    return runtime.run()


def test_single_crash_mid_run_preserves_result():
    bundle, index, stores = materialize(bins=32)
    hook = CrashOnce(victim=1, after=2)
    result = run_with_fault(bundle, index, stores, hook)
    assert hook.fired
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    np.testing.assert_array_equal(result.value, oracle)
    assert result.telemetry.slaves_failed == 1
    # The victim had processed >= 2 jobs plus one in flight: all redone.
    assert result.telemetry.jobs_reexecuted >= 3


def test_immediate_crash_preserves_result():
    bundle, index, stores = materialize(bins=16)
    hook = CrashOnce(victim=0, after=0)  # dies on its very first job
    result = run_with_fault(bundle, index, stores, hook)
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    np.testing.assert_array_equal(result.value, oracle)
    assert result.telemetry.slaves_failed == 1


def test_crashes_in_both_clusters():
    bundle, index, stores = materialize(bins=16)

    fired: set[int] = set()
    lock = threading.Lock()

    def hook(slave_id: int, job) -> None:
        # slave 0 is in the local cluster, slave 2 in the cloud cluster.
        if slave_id in (0, 2):
            with lock:
                if slave_id not in fired:
                    fired.add(slave_id)
                    raise WorkerFailure(f"crash {slave_id}")

    result = run_with_fault(bundle, index, stores, hook)
    assert fired == {0, 2}
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    np.testing.assert_array_equal(result.value, oracle)
    assert result.telemetry.slaves_failed == 2


def test_knn_crash_preserves_exact_topk():
    bundle, index, stores = materialize("knn", dims=3, k=7)
    hook = CrashOnce(victim=3, after=1)
    result = run_with_fault(bundle, index, stores, hook)
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    assert result.value == oracle


def test_genuine_bug_recovers_result_but_reraises():
    bundle, index, stores = materialize(bins=16)
    fired = threading.Event()

    def buggy_hook(slave_id: int, job) -> None:
        if slave_id == 1 and not fired.is_set():
            fired.set()
            raise ValueError("application bug")

    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2),
        fault_hook=buggy_hook,
    )
    with pytest.raises(ValueError, match="application bug"):
        runtime.run()


# -- pool-level recovery unit tests ---------------------------------------------


def _group(gid, ids, file_id=0):
    jobs = tuple(
        Job(job_id=j, file_id=file_id, chunk_index=i, offset=i * 8, nbytes=8,
            num_units=1, site=LOCAL_SITE)
        for i, j in enumerate(ids)
    )
    return JobGroup(group_id=gid, cluster="c", jobs=jobs)


def test_pool_requeue_in_flight_job():
    pool = JobPool()
    pool.add_group(_group(0, [1, 2]))
    job = pool.take()
    assert pool.in_flight == 1
    pool.requeue([job])
    assert pool.in_flight == 0
    assert len(pool) == 2
    # Re-take and finish: group completion still fires exactly once.
    done = set()
    while True:
        j = pool.take()
        if j is None:
            break
        gid = pool.mark_done(j.job_id)
        if gid is not None:
            done.add(gid)
    assert done == {0}
    assert pool.drained


def test_pool_requeue_completed_job_uses_recovery_group():
    pool = JobPool()
    pool.add_group(_group(0, [1]))
    job = pool.take()
    assert pool.mark_done(1) == 0  # group complete (and acked upstream)
    pool.requeue([job])
    retaken = pool.take()
    assert retaken.job_id == 1
    # Recovery completion must not re-complete group 0.
    assert pool.mark_done(1) is None
    assert pool.drained


def test_pool_requeue_unknown_job_rejected():
    pool = JobPool()
    stray = Job(job_id=99, file_id=0, chunk_index=0, offset=0, nbytes=8,
                num_units=1, site=LOCAL_SITE)
    with pytest.raises(SchedulingError):
        pool.requeue([stray])
