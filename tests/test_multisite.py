"""Tests for the N-site generalization (Section II's two-providers claim)."""

from __future__ import annotations

import pytest

from repro.config import DatasetSpec, MiddlewareTuning
from repro.errors import ConfigurationError, SimulationError
from repro.sim.multisite import (
    CrossPath,
    MultiSiteConfig,
    MultiSiteSimulation,
    SiteSpec,
)
from repro.sim.storagemodel import StorePath
from repro.units import MB


def storage(name, bandwidth_mb=200, conn_mb=20):
    return StorePath(
        name=name,
        bandwidth=bandwidth_mb * MB,
        per_connection_cap=conn_mb * MB,
        request_latency=0.001,
    )


def wan(name, bandwidth_mb=40, conn_mb=3):
    return StorePath(
        name=name,
        bandwidth=bandwidth_mb * MB,
        per_connection_cap=conn_mb * MB,
        request_latency=0.05,
    )


def small_dataset(files=6, chunks_per_file=4):
    # files x chunks x 1 MB
    return DatasetSpec(
        total_bytes=files * chunks_per_file * MB,
        num_files=files,
        chunk_bytes=1 * MB,
        record_bytes=4,
    )


def three_provider_config(**overrides):
    """Campus + two cloud providers, data split evenly."""
    sites = (
        SiteSpec(name="campus", cores=4, data_files=2, storage=storage("campus")),
        SiteSpec(name="aws", cores=4, data_files=2, storage=storage("aws"),
                 compute_slowdown=1.2),
        SiteSpec(name="azure", cores=4, data_files=2, storage=storage("azure"),
                 compute_slowdown=1.3),
    )
    cross = tuple(
        CrossPath(src=a, dst=b, path=wan(f"{a}->{b}"))
        for a in ("campus", "aws", "azure")
        for b in ("campus", "aws", "azure")
        if a != b
    )
    params = dict(
        name="three-provider",
        app="knn",
        dataset=small_dataset(),
        sites=sites,
        cross_paths=cross,
        head_site="campus",
    )
    params.update(overrides)
    return MultiSiteConfig(**params)


def test_three_sites_process_every_job():
    report = MultiSiteSimulation(three_provider_config()).run()
    assert report.total_jobs == 24
    assert set(report.clusters) == {
        "campus-cluster", "aws-cluster", "azure-cluster"
    }
    report.validate()


def test_deterministic():
    a = MultiSiteSimulation(three_provider_config()).run()
    b = MultiSiteSimulation(three_provider_config()).run()
    assert a.makespan == b.makespan
    assert a.events_processed == b.events_processed


def test_cross_provider_stealing():
    """A site with compute but no data steals from the other providers."""
    config = three_provider_config(
        sites=(
            SiteSpec(name="campus", cores=2, data_files=0,
                     storage=storage("campus")),
            SiteSpec(name="aws", cores=2, data_files=3, storage=storage("aws")),
            SiteSpec(name="azure", cores=2, data_files=3,
                     storage=storage("azure")),
        ),
    )
    report = MultiSiteSimulation(config).run()
    campus = report.cluster("campus-cluster")
    assert campus.jobs_processed > 0
    assert campus.jobs_stolen == campus.jobs_processed  # all remote
    assert report.total_jobs == 24


def test_site_without_compute_contributes_data_only():
    config = three_provider_config(
        sites=(
            SiteSpec(name="campus", cores=6, data_files=2,
                     storage=storage("campus")),
            SiteSpec(name="aws", cores=6, data_files=2, storage=storage("aws")),
            SiteSpec(name="azure", cores=0, data_files=2,
                     storage=storage("azure")),
        ),
    )
    report = MultiSiteSimulation(config).run()
    assert set(report.clusters) == {"campus-cluster", "aws-cluster"}
    assert report.total_jobs == 24  # azure's files processed remotely


def test_slower_provider_gets_fewer_jobs():
    config = three_provider_config(
        app="kmeans",
        dataset=small_dataset(files=6, chunks_per_file=16),
        sites=(
            SiteSpec(name="campus", cores=4, data_files=2,
                     storage=storage("campus")),
            SiteSpec(name="aws", cores=4, data_files=2, storage=storage("aws"),
                     compute_slowdown=1.0),
            SiteSpec(name="azure", cores=4, data_files=2,
                     storage=storage("azure"), compute_slowdown=3.0),
        ),
        # Small groups so the head retains jobs the fast providers can
        # steal once their own files are drained (large groups would let
        # each master hoard its whole site's jobs up front).
        tuning=MiddlewareTuning(job_group_size=2, pool_low_water=0),
    )
    report = MultiSiteSimulation(config).run()
    azure = report.cluster("azure-cluster")
    aws = report.cluster("aws-cluster")
    # Pooling load balancing: the 3x-slower provider processes fewer jobs,
    # and the fast providers steal its surplus.
    assert azure.jobs_processed < aws.jobs_processed
    assert aws.jobs_stolen + report.cluster("campus-cluster").jobs_stolen > 0


def test_missing_cross_path_is_reported():
    config = three_provider_config(cross_paths=())
    with pytest.raises(SimulationError, match="CrossPath|path"):
        MultiSiteSimulation(config).run()


def test_config_validation():
    with pytest.raises(ConfigurationError):
        MultiSiteConfig(name="x", app="knn", dataset=small_dataset(), sites=())
    # files must sum to the dataset's file count
    with pytest.raises(ConfigurationError):
        three_provider_config(dataset=small_dataset(files=7))
    # duplicate site names
    with pytest.raises(ConfigurationError):
        three_provider_config(
            sites=(
                SiteSpec(name="campus", cores=2, data_files=3,
                         storage=storage("a")),
                SiteSpec(name="campus", cores=2, data_files=3,
                         storage=storage("b")),
            )
        )
    # unknown head site
    with pytest.raises(ConfigurationError):
        three_provider_config(head_site="gcp")
    with pytest.raises(ConfigurationError):
        SiteSpec(name="", cores=1, data_files=0, storage=storage("x"))
    with pytest.raises(ConfigurationError):
        SiteSpec(name="x", cores=1, data_files=0, storage=storage("x"),
                 compute_slowdown=0)


def test_two_site_special_case_matches_shape():
    """With two sites the N-site machinery reproduces the familiar shape:
    hybrid slower than an all-at-one-site run with the same total cores."""
    local_only = MultiSiteConfig(
        name="central",
        app="knn",
        dataset=small_dataset(),
        sites=(
            SiteSpec(name="campus", cores=8, data_files=6,
                     storage=storage("campus")),
        ),
    )
    central = MultiSiteSimulation(local_only).run()
    hybrid_config = three_provider_config(
        sites=(
            SiteSpec(name="campus", cores=4, data_files=1,
                     storage=storage("campus")),
            SiteSpec(name="aws", cores=4, data_files=5, storage=storage("aws")),
            SiteSpec(name="azure", cores=0, data_files=0,
                     storage=storage("azure")),
        ),
    )
    hybrid = MultiSiteSimulation(hybrid_config).run()
    assert hybrid.total_jobs == central.total_jobs == 24
    # Skewed hybrid pays a WAN penalty.
    assert hybrid.makespan > central.makespan


def test_head_at_remote_provider():
    config = three_provider_config(head_site="aws")
    report = MultiSiteSimulation(config).run()
    assert report.total_jobs == 24
    report.validate()


def test_multisite_trace():
    from repro.sim.trace import TraceRecorder, utilization

    trace = TraceRecorder()
    report = MultiSiteSimulation(three_provider_config(), trace=trace).run()
    assert len(trace.of_kind("job_done")) == 24
    util = utilization(trace, report.makespan)
    assert len(util) == 12  # 4 cores x 3 sites
    for parts in util.values():
        assert parts["retrieval"] + parts["processing"] + parts["idle"] == (
            pytest.approx(1.0, abs=1e-6)
        )
