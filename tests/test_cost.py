"""Tests for the pay-as-you-go cost model."""

from __future__ import annotations

import pytest

from repro.bench.configs import env_config
from repro.bench.cost import AWS_2011, CostBreakdown, PricingModel, price_run
from repro.errors import ConfigurationError
from repro.sim.simulation import simulate

SCALE = 0.03


@pytest.fixture(scope="module")
def hybrid():
    config = env_config("knn", "env-17/83", scale=SCALE)
    return config, simulate(config)


def test_pricing_validation():
    with pytest.raises(ConfigurationError):
        PricingModel(ec2_instance_hour=-1)
    with pytest.raises(ConfigurationError):
        PricingModel(ec2_cores_per_instance=0)


def test_local_run_is_cloud_free():
    config = env_config("knn", "env-local", scale=SCALE)
    cost = price_run(config, simulate(config))
    assert cost.ec2_compute == 0.0
    assert cost.s3_egress == 0.0
    assert cost.s3_requests == 0.0
    assert cost.cloud_total == 0.0
    assert cost.local_compute > 0.0
    assert cost.total == cost.local_compute


def test_cloud_run_has_no_egress_but_pays_compute():
    config = env_config("knn", "env-cloud", scale=SCALE)
    cost = price_run(config, simulate(config))
    # S3 -> EC2 is free; nothing leaves AWS in a single-cluster cloud run.
    assert cost.s3_egress == 0.0
    assert cost.ec2_compute > 0.0
    assert cost.s3_requests > 0.0  # 960 chunks x 4 ranged GETs
    assert cost.local_compute == 0.0


def test_hybrid_pays_for_stolen_chunks_and_robj(hybrid):
    config, report = hybrid
    cost = price_run(config, report)
    stolen = report.cluster("local-cluster").jobs_stolen
    assert stolen > 0
    expected_bytes = stolen * config.dataset.chunk_bytes + 16 * 1024
    assert cost.s3_egress == pytest.approx(
        expected_bytes / 1024**3 * AWS_2011.s3_egress_per_gb, rel=1e-6
    )
    assert cost.ec2_compute > 0 and cost.local_compute > 0


def test_instance_hour_rounding(hybrid):
    config, report = hybrid
    # 16 cloud cores = 8 m1.large instances; short scaled run bills 1 hour.
    cost = price_run(config, report)
    assert cost.ec2_compute == pytest.approx(8 * 0.34)


def test_breakdown_render_and_totals():
    cost = CostBreakdown(ec2_compute=1.0, s3_egress=0.5, s3_requests=0.25,
                         local_compute=0.1)
    assert cost.cloud_total == pytest.approx(1.75)
    assert cost.total == pytest.approx(1.85)
    text = cost.render()
    assert "$1.85" in text and "EC2 $1.00" in text


def test_custom_tariff_scales_linearly(hybrid):
    config, report = hybrid
    base = price_run(config, report)
    doubled = price_run(
        config,
        report,
        PricingModel(ec2_instance_hour=0.68, s3_egress_per_gb=0.30,
                     s3_get_per_10k=0.02, local_core_hour=0.06),
    )
    assert doubled.ec2_compute == pytest.approx(2 * base.ec2_compute)
    assert doubled.s3_egress == pytest.approx(2 * base.s3_egress)
    assert doubled.local_compute == pytest.approx(2 * base.local_compute)
