"""Tests for dataset build/read over the storage layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import CLOUD_SITE, LOCAL_SITE, DatasetSpec, PlacementSpec
from repro.data.dataset import DatasetReader, build_dataset
from repro.data.records import VALUE_SCHEMA, point_schema
from repro.errors import DataFormatError
from repro.storage.objectstore import ObjectStore


def sequential_block(start, count, index):
    return np.arange(start, start + count, dtype=np.float64).reshape(-1, 1)


def make_dataset(stores, local_fraction=0.5, files=4, chunks=3, units=8):
    spec = DatasetSpec(
        total_bytes=files * chunks * units * 8,
        num_files=files,
        chunk_bytes=units * 8,
        record_bytes=8,
    )
    index = build_dataset(
        spec, PlacementSpec(local_fraction), VALUE_SCHEMA, sequential_block, stores
    )
    return spec, index


def test_build_places_files_per_placement(two_site_stores):
    spec, index = make_dataset(two_site_stores)
    assert len(list(two_site_stores[LOCAL_SITE].keys())) == 2
    assert len(list(two_site_stores[CLOUD_SITE].keys())) == 2
    assert two_site_stores[LOCAL_SITE].total_bytes() == spec.file_bytes * 2


def test_read_jobs_roundtrip_global_sequence(two_site_stores):
    spec, index = make_dataset(two_site_stores)
    reader = DatasetReader(index, two_site_stores)
    values = []
    for job in index.jobs():
        raw = reader.read_job(job)
        values.extend(VALUE_SCHEMA.decode(raw).ravel().tolist())
    assert values == [float(i) for i in range(spec.total_units)]


def test_remote_read_uses_multithreaded_fetch(two_site_stores):
    spec, index = make_dataset(two_site_stores)
    reader = DatasetReader(index, two_site_stores, retrieval_threads=4)
    cloud_job = next(j for j in index.jobs() if j.site == CLOUD_SITE)
    before = two_site_stores[CLOUD_SITE].stats.gets
    raw = reader.read_job(cloud_job, from_site=LOCAL_SITE)
    after = two_site_stores[CLOUD_SITE].stats.gets
    assert after - before == 4  # one GET per retrieval thread
    assert len(raw) == cloud_job.nbytes
    # Same-site read is a single request.
    before = two_site_stores[CLOUD_SITE].stats.gets
    reader.read_job(cloud_job, from_site=CLOUD_SITE)
    assert two_site_stores[CLOUD_SITE].stats.gets - before == 1


def test_read_all_chunks_matches_job_reads(two_site_stores):
    spec, index = make_dataset(two_site_stores, files=2, chunks=2)
    reader = DatasetReader(index, two_site_stores)
    chunks = reader.read_all_chunks()
    assert len(chunks) == spec.num_chunks
    assert all(len(c) == spec.chunk_bytes for c in chunks)


def test_schema_mismatch_rejected(two_site_stores):
    spec = DatasetSpec(total_bytes=64, num_files=1, chunk_bytes=64, record_bytes=4)
    with pytest.raises(DataFormatError):
        build_dataset(spec, PlacementSpec(1.0), VALUE_SCHEMA, sequential_block,
                      two_site_stores)


def test_missing_store_rejected():
    spec = DatasetSpec(total_bytes=64, num_files=1, chunk_bytes=64, record_bytes=8)
    with pytest.raises(DataFormatError):
        build_dataset(spec, PlacementSpec(1.0), VALUE_SCHEMA, sequential_block, {})


def test_bad_block_generator_rejected(two_site_stores):
    spec = DatasetSpec(total_bytes=64, num_files=1, chunk_bytes=64, record_bytes=8)

    def short_block(start, count, index):
        return np.zeros((count - 1, 1))

    with pytest.raises(DataFormatError):
        build_dataset(spec, PlacementSpec(1.0), VALUE_SCHEMA, short_block,
                      two_site_stores)
