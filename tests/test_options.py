"""Nested option specs: flat/nested equivalence, deprecation, conflicts.

The RunConfig redesign groups 20+ flat knobs into four nested spec
dataclasses. The contract these tests pin:

* flat construction still works but emits ``DeprecationWarning``;
* flat and nested construction yield *equal* configs (and identical
  runs — see the execution equivalence test at the bottom);
* nested construction is silent;
* flat + nested together: silent when they agree, ``ConfigurationError``
  when they disagree;
* flat attribute reads (``config.cache_bytes``) never warn and always
  mirror the nested spec;
* ``dataclasses.replace`` works on core + nested fields.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

import repro
from repro import (
    CacheOptions,
    MonitorOptions,
    ResilienceOptions,
    RunConfig,
    SyncOptions,
)
from repro.config import DatasetSpec
from repro.errors import ConfigurationError
from repro.resilience import FaultSpec, RetryPolicy

#: Every legacy flat kwarg with a non-default value, and the nested spec
#: construction that must be equivalent.
FLAT_KWARGS = dict(
    cache_bytes=1 << 20,
    prefetch=True,
    sync_encoding="delta",
    sync_compress="zlib",
    sync_topology="tree",
    sync_stream=True,
    sync_watermark=4,
    sync_fanout=3,
    sync_ratio=0.5,
    monitor_interval=0.25,
    monitor_capacity=64,
    faults="transient=0.1,seed=7",
    retry=RetryPolicy(max_attempts=2),
    join_timeout=30.0,
)

NESTED_KWARGS = dict(
    cache=CacheOptions(bytes=1 << 20, prefetch=True),
    sync=SyncOptions(
        encoding="delta", compress="zlib", topology="tree",
        stream=True, watermark=4, fanout=3, ratio=0.5,
    ),
    monitor=MonitorOptions(interval=0.25, capacity=64),
    resilience=ResilienceOptions(
        faults="transient=0.1,seed=7",
        retry=RetryPolicy(max_attempts=2),
        join_timeout=30.0,
    ),
)


def flat_config() -> RunConfig:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return RunConfig(**FLAT_KWARGS)


def test_flat_construction_warns_once_per_family():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        RunConfig(**FLAT_KWARGS)
    dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(dep) == 4  # one per option family
    messages = "\n".join(str(w.message) for w in dep)
    for family in ("CacheOptions", "SyncOptions", "MonitorOptions",
                   "ResilienceOptions"):
        assert family in messages
    # The warning names the offending flat kwargs.
    assert "cache_bytes" in messages and "sync_encoding" in messages


def test_nested_construction_is_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        RunConfig(**NESTED_KWARGS)


def test_flat_and_nested_configs_are_equal():
    assert flat_config() == RunConfig(**NESTED_KWARGS)


def test_flat_reads_mirror_nested_spec_without_warning():
    config = RunConfig(**NESTED_KWARGS)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert config.cache_bytes == 1 << 20
        assert config.prefetch is True
        assert config.sync_encoding == "delta"
        assert config.sync_compress == "zlib"
        assert config.sync_topology == "tree"
        assert config.sync_stream is True
        assert config.sync_watermark == 4
        assert config.sync_fanout == 3
        assert config.sync_ratio == 0.5
        assert config.monitor_interval == 0.25
        assert config.monitor_capacity == 64
        assert config.on_sample is None
        assert config.join_timeout == 30.0
        assert isinstance(config.faults, FaultSpec)
        assert config.retry == RetryPolicy(max_attempts=2)


def test_agreeing_flat_and_nested_accepted_silently():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        config = RunConfig(
            cache=CacheOptions(bytes=512), cache_bytes=512,
            resilience=ResilienceOptions(faults="transient=0.2,seed=3"),
            faults="transient=0.2,seed=3",
        )
    assert config.cache.bytes == 512


@pytest.mark.parametrize(
    "nested, flat",
    [
        ({"cache": CacheOptions(bytes=1)}, {"cache_bytes": 2}),
        ({"sync": SyncOptions(encoding="delta")}, {"sync_encoding": "sparse"}),
        ({"monitor": MonitorOptions(capacity=9)}, {"monitor_capacity": 8}),
        (
            {"resilience": ResilienceOptions(join_timeout=5.0)},
            {"join_timeout": 6.0},
        ),
        (
            {"resilience": ResilienceOptions(faults="transient=0.1,seed=1")},
            {"faults": "transient=0.2,seed=1"},
        ),
    ],
)
def test_disagreeing_flat_and_nested_raises(nested, flat):
    with pytest.raises(ConfigurationError, match="disagree"):
        RunConfig(**nested, **flat)


def test_replace_round_trips_nested_fields():
    config = RunConfig(**NESTED_KWARGS)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        swapped = dataclasses.replace(config, cache=CacheOptions(bytes=7))
    assert swapped.cache_bytes == 7
    assert swapped.sync == config.sync
    assert swapped.monitor == config.monitor
    assert swapped.resilience == config.resilience
    # Unchanged replace is a clean identity-equal copy.
    assert dataclasses.replace(config) == config


def test_repr_and_eq_ignore_flat_mirrors():
    config = RunConfig(cache=CacheOptions(bytes=3))
    text = repr(config)
    assert "cache=CacheOptions" in text
    assert "cache_bytes" not in text


def test_spec_level_validation_still_fires():
    with pytest.raises(ConfigurationError, match="cache_bytes"):
        CacheOptions(bytes=-1)
    with pytest.raises(ConfigurationError, match="monitor_interval"):
        MonitorOptions(interval=-0.5)
    with pytest.raises(ConfigurationError, match="watermark"):
        SyncOptions(watermark=0)
    with pytest.raises(ConfigurationError, match="join_timeout"):
        ResilienceOptions(join_timeout=0.0)
    # ...and through the flat shims too.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        with pytest.raises(ConfigurationError, match="cache_bytes"):
            RunConfig(cache_bytes=-1)


def test_resilience_parses_string_faults():
    spec = ResilienceOptions(faults="transient=0.25,seed=11")
    assert isinstance(spec.faults, FaultSpec)
    assert spec.faults.transient_rate == 0.25


def test_sync_options_to_spec_and_default_detection():
    assert SyncOptions().is_default
    assert not SyncOptions(encoding="delta").is_default
    spec = SyncOptions(topology="tree", ratio=0.5).to_spec()
    assert spec.topology == "tree" and spec.sim_ratio == 0.5


DATASET = DatasetSpec(
    total_bytes=4096 * 8, num_files=4, chunk_bytes=2048, record_bytes=8
)


@pytest.mark.parametrize("mode", ["serial", "runtime"])
def test_flat_and_nested_configs_run_identically(mode):
    """The redesign's contract: same knobs, same bits out."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        flat = RunConfig(
            mode=mode, seed=7,
            cache_bytes=1 << 22,
            sync_encoding="delta", sync_compress="zlib",
            faults="transient=0.1,seed=3",
        )
    nested = RunConfig(
        mode=mode, seed=7,
        cache=CacheOptions(bytes=1 << 22),
        sync=SyncOptions(encoding="delta", compress="zlib"),
        resilience=ResilienceOptions(faults="transient=0.1,seed=3"),
    )
    assert flat == nested
    a = repro.run("histogram", DATASET, flat)
    b = repro.run("histogram", DATASET, nested)
    np.testing.assert_array_equal(np.asarray(a.value), np.asarray(b.value))
    assert a.passes == b.passes
