"""Tests for the reproduction scorecard."""

from __future__ import annotations

import pytest

from repro.bench.validate import Claim, evaluate_claims, render_scorecard

SCALE = 0.03


@pytest.fixture(scope="module")
def claims():
    return evaluate_claims(scale=SCALE)


def test_claims_cover_the_evaluation(claims):
    ids = {c.claim_id for c in claims}
    for expected in (
        "headline-slowdown",
        "headline-speedup",
        "pagerank-robj-cost",
        "small-robj-cost",
        "5050-balanced",
        "stealing-monotone",
        "kmeans-scales-best",
        "pagerank-fixed-cost",
    ):
        assert expected in ids
    for app in ("knn", "kmeans", "pagerank"):
        assert f"{app}-skew-ramp" in ids
        assert f"{app}-monotone-scaling" in ids
    assert len(claims) >= 15


def test_claims_are_graded(claims):
    for claim in claims:
        assert isinstance(claim.passed, bool)
        assert claim.paper and claim.measured and claim.description


def test_most_claims_hold_at_reduced_scale(claims):
    """At 3% scale the absolute bands still hold for the structural claims;
    allow a couple of scale-sensitive misses (e.g. robj-vs-runtime ratios
    shift when the data shrinks 30x but the object does not)."""
    failed = [c.claim_id for c in claims if not c.passed]
    assert len(failed) <= 4, failed


def test_render_scorecard(claims):
    text = render_scorecard(claims)
    assert "Reproduction scorecard" in text
    assert "headline-slowdown" in text
    assert "PASS" in text


def test_render_marks_failures():
    bad = [Claim("x", "d", "p", "m", False)]
    text = render_scorecard(bad)
    assert "0/1" in text
    assert "FAIL" in text
