"""Tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, AnyOf, Environment


def test_timeout_ordering_and_clock():
    env = Environment()
    log = []

    def proc(delay, tag):
        yield env.timeout(delay)
        log.append((tag, env.now))

    env.process(proc(2.0, "b"))
    env.process(proc(1.0, "a"))
    env.process(proc(2.0, "c"))  # same time as b: creation order wins
    env.run()
    assert log == [("a", 1.0), ("b", 2.0), ("c", 2.0)]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(3)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    result = env.run(env.process(parent()))
    assert result == 43
    assert env.now == 3


def test_event_succeed_and_chained_wait():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(tag):
        value = yield gate
        seen.append((tag, value))

    env.process(waiter("x"))
    env.process(waiter("y"))

    def opener():
        yield env.timeout(5)
        gate.succeed("open")

    env.process(opener())
    env.run()
    assert seen == [("x", "open"), ("y", "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_failure_propagates_into_process():
    env = Environment()
    evt = env.event()
    caught = []

    def waiter():
        try:
            yield evt
        except ValueError as exc:
            caught.append(str(exc))

    env.process(waiter())
    evt.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_uncaught_process_failure_surfaces():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("dead")

    proc = env.process(bad())
    with pytest.raises(RuntimeError, match="dead"):
        env.run(proc)


def test_unwaited_failed_event_raises():
    env = Environment()
    evt = env.event()
    evt.fail(RuntimeError("lost"))
    with pytest.raises(RuntimeError, match="lost"):
        env.run()


def test_yield_non_event_rejected():
    env = Environment()

    def bad():
        yield 42

    proc = env.process(bad())
    with pytest.raises(SimulationError):
        env.run(proc)


def test_allof_collects_values():
    env = Environment()

    def child(d, v):
        yield env.timeout(d)
        return v

    def parent():
        values = yield AllOf(env, [env.process(child(2, "a")),
                                   env.process(child(1, "b"))])
        return values

    assert env.run(env.process(parent())) == ["a", "b"]
    assert env.now == 2


def test_allof_empty_succeeds_immediately():
    env = Environment()

    def parent():
        values = yield AllOf(env, [])
        return values

    assert env.run(env.process(parent())) == []


def test_anyof_returns_first():
    env = Environment()

    def child(d, v):
        yield env.timeout(d)
        return v

    def parent():
        value = yield AnyOf(env, [env.process(child(5, "slow")),
                                  env.process(child(1, "fast"))])
        return value

    assert env.run(env.process(parent())) == "fast"
    assert env.now == 1


def test_run_until_time():
    env = Environment()
    fired = []

    def proc():
        yield env.timeout(10)
        fired.append(env.now)

    env.process(proc())
    env.run(until=5.0)
    assert env.now == 5.0
    assert not fired
    env.run(until=15.0)
    assert fired == [10.0]
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_run_until_event_deadlock_detected():
    env = Environment()
    never = env.event()
    with pytest.raises(SimulationError, match="drained"):
        env.run(never)


def test_yielding_processed_event_continues_synchronously():
    env = Environment()
    done = env.event()
    done.succeed("v")

    def proc():
        yield env.timeout(1)  # let `done` process first
        value = yield done
        return value

    assert env.run(env.process(proc())) == "v"


def test_determinism_event_counts():
    def build_and_run():
        env = Environment()
        order = []

        def worker(i):
            yield env.timeout(i % 3)
            order.append(i)
            yield env.timeout(1)
            order.append(-i)

        for i in range(10):
            env.process(worker(i))
        env.run()
        return order, env.events_processed

    a = build_and_run()
    b = build_and_run()
    assert a == b
