"""Stress property tests: kernel determinism under random process graphs
and application agreement with stdlib references on random inputs."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.wordcount import WordCountApp
from repro.core.api import run_serial
from repro.data.records import TOKEN_SCHEMA
from repro.sim.engine import Environment


@st.composite
def process_graph(draw):
    """A random fork/join structure: each spec is (spawn_delay, [waits])."""
    return draw(
        st.lists(
            st.tuples(
                st.floats(0.0, 3.0),
                st.lists(st.floats(0.0, 2.0), min_size=1, max_size=4),
            ),
            min_size=1,
            max_size=12,
        )
    )


@settings(deadline=None, max_examples=40)
@given(process_graph())
def test_engine_deterministic_under_random_graphs(specs):
    def build_and_run():
        env = Environment()
        log: list[tuple[int, float]] = []

        def worker(i, delays):
            for d in delays:
                yield env.timeout(d)
            log.append((i, env.now))

        def spawner():
            for i, (delay, waits) in enumerate(specs):
                if delay > 0:
                    yield env.timeout(delay)
                env.process(worker(i, waits))

        env.process(spawner())
        env.run()
        return log, env.events_processed, env.now

    first = build_and_run()
    second = build_and_run()
    assert first == second
    log, _events, final = first
    assert len(log) == len(specs)
    # Every worker finishes no earlier than the sum of its own delays.
    cumulative_spawn = 0.0
    for i, (delay, waits) in enumerate(specs):
        cumulative_spawn += delay
        finish = dict(log)[i]
        assert finish >= sum(waits) - 1e-9
        assert finish <= final + 1e-9


@settings(deadline=None, max_examples=40)
@given(
    st.lists(st.integers(0, 50), min_size=1, max_size=400),
    st.integers(1, 7),
)
def test_wordcount_matches_counter(tokens, chunk_count):
    arr = np.asarray(tokens, dtype=np.int32).reshape(-1, 1)
    chunks = [TOKEN_SCHEMA.encode(p) for p in np.array_split(arr, chunk_count)
              if len(p)]
    result = run_serial(WordCountApp(), chunks, units_per_group=17)
    assert result == dict(Counter(tokens))
