"""Edge-case tests for the DES kernel beyond the basics in
test_sim_engine.py: composite-event failure modes, priority ordering,
and the process/generator contract."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
)


def test_anyof_failure_of_first_component_propagates():
    env = Environment()
    bad = env.event()
    slow = env.timeout(10)

    def waiter():
        yield AnyOf(env, [bad, slow])

    proc = env.process(waiter())
    bad.fail(RuntimeError("first to fire"))
    with pytest.raises(RuntimeError, match="first to fire"):
        env.run(proc)


def test_anyof_with_already_processed_component():
    env = Environment()
    done = env.event()
    done.succeed("early")

    def waiter():
        yield env.timeout(1)  # let `done` process
        value = yield AnyOf(env, [done, env.timeout(50)])
        return value

    assert env.run(env.process(waiter())) == "early"
    assert env.now == 1  # did not wait for the slow component


def test_allof_with_already_failed_component():
    env = Environment()
    dead = env.event()

    def absorb():
        try:
            yield dead
        except ValueError:
            pass

    env.process(absorb())

    def killer():
        yield env.timeout(0.5)
        dead.fail(ValueError("pre-dead"))

    env.process(killer())
    env.run()  # `dead` is now processed, its failure absorbed

    def waiter():
        yield AllOf(env, [dead, env.timeout(1)])

    with pytest.raises(ValueError, match="pre-dead"):
        env.run(env.process(waiter()))


def test_priority_orders_simultaneous_events():
    env = Environment()
    order = []
    urgent = env.event()
    normal = env.event()
    urgent.callbacks.append(lambda e: order.append("urgent"))
    normal.callbacks.append(lambda e: order.append("normal"))
    # Trigger normal first but with lower priority.
    normal.succeed(priority=PRIORITY_NORMAL)
    urgent.succeed(priority=PRIORITY_URGENT)
    env.run()
    assert order == ["urgent", "normal"]


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_event_from_other_environment_rejected():
    env_a = Environment()
    env_b = Environment()
    foreign = env_b.event()

    def waiter():
        yield foreign

    proc = env_a.process(waiter())
    foreign.succeed()
    with pytest.raises(SimulationError, match="another environment"):
        env_a.run(proc)
    env_b.run()


def test_condition_rejects_mixed_environments():
    env_a = Environment()
    env_b = Environment()
    with pytest.raises(SimulationError):
        AllOf(env_a, [env_a.event(), env_b.event()])
    with pytest.raises(SimulationError):
        AnyOf(env_a, [env_b.event()])


def test_value_inspection_before_trigger_rejected():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_step_on_empty_heap_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_nested_processes_compose():
    env = Environment()

    def leaf(n):
        yield env.timeout(n)
        return n * 10

    def mid():
        a = yield env.process(leaf(1))
        b = yield env.process(leaf(2))
        return a + b

    def root():
        values = yield AllOf(env, [env.process(mid()), env.process(leaf(5))])
        return values

    assert env.run(env.process(root())) == [30, 50]
    assert env.now == 5
