"""Edge-case tests for the application registry and bundles."""

from __future__ import annotations

import pytest

from repro.apps.base import (
    AppBundle,
    AppProfile,
    get_app_factory,
    get_profile,
    make_bundle,
    register_app,
)
from repro.apps.histogram import HistogramApp
from repro.data.records import VALUE_SCHEMA, point_schema
from repro.errors import ConfigurationError


def test_bundle_schema_profile_mismatch_rejected():
    profile = AppProfile(key="t", unit_cost_local=1e-8, cloud_slowdown=1.0,
                         robj_bytes=8, record_bytes=4)  # schema is 8 B
    with pytest.raises(ConfigurationError, match="record size"):
        AppBundle(
            profile=profile,
            app=HistogramApp(bins=4),
            schema=VALUE_SCHEMA,
            block_fn=lambda s, c, i: None,
        )


def test_register_duplicate_key_rejected():
    profile = get_profile("knn")
    with pytest.raises(ConfigurationError, match="already registered"):
        register_app(profile, get_app_factory("knn"))


def test_make_bundle_passes_params_through():
    bundle = make_bundle("histogram", 256, bins=7)
    assert bundle.app.bins == 7
    bundle2 = make_bundle("kmeans", 256, dims=5, k=3)
    assert bundle2.app.centroids.shape == (3, 5)


def test_profile_site_cost_lookup():
    from repro.config import CLOUD_SITE, LOCAL_SITE

    profile = get_profile("kmeans")
    assert profile.unit_cost(CLOUD_SITE) == pytest.approx(
        profile.unit_cost_local * 22 / 16
    )
    assert profile.unit_cost(LOCAL_SITE) == profile.unit_cost_local


def test_bundle_block_fn_deterministic_per_seed():
    a = make_bundle("knn", 128, seed=3)
    b = make_bundle("knn", 128, seed=3)
    c = make_bundle("knn", 128, seed=4)
    import numpy as np

    np.testing.assert_array_equal(a.block_fn(0, 64, 0), b.block_fn(0, 64, 0))
    assert not np.array_equal(
        a.block_fn(0, 64, 0)["coords"], c.block_fn(0, 64, 0)["coords"]
    )
