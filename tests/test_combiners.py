"""Tests for the global-reduction combiner library."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.combiners import available_combiners, get_combiner, register_combiner
from repro.errors import ReductionError


def test_builtins_registered():
    names = available_combiners()
    for expected in ("sum", "min", "max", "concat", "count", "mean_pair"):
        assert expected in names


def test_get_unknown_raises():
    with pytest.raises(ReductionError):
        get_combiner("no-such-combiner")


def test_register_duplicate_rejected():
    with pytest.raises(ReductionError):
        register_combiner("sum", lambda a, b: a + b)


def test_register_and_overwrite():
    register_combiner("test-xor", lambda a, b: a ^ b, overwrite=True)
    assert get_combiner("test-xor")(0b1010, 0b0110) == 0b1100
    register_combiner("test-xor", lambda a, b: a | b, overwrite=True)
    assert get_combiner("test-xor")(0b1010, 0b0110) == 0b1110


def test_register_empty_name_rejected():
    with pytest.raises(ReductionError):
        register_combiner("", lambda a, b: a)


def test_mean_pair():
    combine = get_combiner("mean_pair")
    total = combine((10.0, 2), (20.0, 3))
    assert total == (30.0, 5)


def test_concat_canonicalizes():
    combine = get_combiner("concat")
    assert combine("b", "a") == ("a", "b")
    assert combine(("b", "c"), "a") == ("a", "b", "c")


@given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
def test_builtin_scalar_combiners_commutative_associative(a, b, c):
    for name in ("sum", "min", "max", "count"):
        f = get_combiner(name)
        assert f(a, b) == f(b, a)
        assert f(f(a, b), c) == f(a, f(b, c))


@given(
    st.lists(st.text(alphabet="abc", min_size=1, max_size=2), min_size=1, max_size=4),
    st.lists(st.text(alphabet="abc", min_size=1, max_size=2), min_size=1, max_size=4),
)
def test_concat_commutative(xs, ys):
    f = get_combiner("concat")
    assert f(tuple(xs), tuple(ys)) == f(tuple(ys), tuple(xs))
