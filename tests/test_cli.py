"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main

SCALE = ["--scale", "0.02"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_apps_lists_all(capsys):
    code, out = run_cli(capsys, "apps")
    assert code == 0
    for app in ("knn", "kmeans", "pagerank", "wordcount", "histogram"):
        assert app in out


def test_simulate_prints_breakdown(capsys):
    code, out = run_cli(capsys, *SCALE, "simulate", "knn", "env-33/67")
    assert code == 0
    assert "makespan" in out
    assert "stolen" in out
    assert "local" in out and "cloud" in out


def test_simulate_unknown_app_fails_cleanly(capsys):
    code = main([*SCALE, "simulate", "nope", "env-local"])
    err = capsys.readouterr().err
    assert code == 1
    assert "error:" in err and "nope" in err


def test_simulate_rejects_unknown_env():
    with pytest.raises(SystemExit):
        main(["simulate", "knn", "env-9/91"])


def test_figure3_and_figure4(capsys):
    code, out = run_cli(capsys, *SCALE, "figure3", "kmeans")
    assert code == 0
    assert "Figure 3 (kmeans)" in out
    code, out = run_cli(capsys, *SCALE, "figure4", "knn")
    assert code == 0
    assert "Figure 4 (knn)" in out
    assert "paper speedup" in out


def test_table_commands(capsys):
    code, out = run_cli(capsys, *SCALE, "table1")
    assert code == 0
    assert "Table I" in out
    code, out = run_cli(capsys, *SCALE, "table2")
    assert code == 0
    assert "Table II" in out
    assert "Average hybrid slowdown" in out


def test_cost_command(capsys):
    code, out = run_cli(capsys, *SCALE, "cost", "knn")
    assert code == 0
    assert "cloud bill" in out
    assert "$0.00" in out  # env-local line


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_seed_flag_changes_output(capsys):
    _, a = run_cli(capsys, *SCALE, "--seed", "1", "simulate", "knn", "env-50/50")
    _, b = run_cli(capsys, *SCALE, "--seed", "2", "simulate", "knn", "env-50/50")
    assert a != b


def test_module_entrypoint():
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--scale", "0.02", "apps"],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0
    assert "pagerank" in proc.stdout


def test_trace_sim_with_exports(capsys, tmp_path):
    import json

    jsonl = tmp_path / "t.jsonl"
    pft = tmp_path / "t.json"
    code, out = run_cli(
        capsys, *SCALE, "trace", "knn", "env-50/50",
        "--width", "30", "--out", str(jsonl), "--perfetto", str(pft),
    )
    assert code == 0
    assert "w000 |" in out
    assert f"wrote" in out and "t.jsonl" in out
    from repro.obs import read_jsonl

    back = read_jsonl(jsonl)
    assert len(back) > 0
    doc = json.loads(pft.read_text())
    assert doc["traceEvents"]


def test_trace_without_env_or_runtime_fails(capsys):
    code = main([*SCALE, "trace", "knn"])
    err = capsys.readouterr().err
    assert code == 1
    assert "environment" in err


def test_trace_runtime_and_report_round_trip(capsys, tmp_path):
    jsonl = tmp_path / "rt.jsonl"
    code, out = run_cli(
        capsys, "trace", "wordcount", "--runtime",
        "--units", "512", "--width", "30", "--out", str(jsonl),
    )
    assert code == 0
    assert "mean worker idle fraction" in out
    assert jsonl.exists()

    pft = tmp_path / "rt.json"
    code, out = run_cli(
        capsys, "report", str(jsonl), "--width", "30", "--perfetto", str(pft),
    )
    assert code == 0
    assert "mean worker idle fraction" in out
    assert pft.exists()


def test_report_rejects_bad_trace_file(capsys, tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("definitely not json\n")
    code = main(["report", str(bad)])
    err = capsys.readouterr().err
    assert code == 1
    assert "bad trace line" in err
