"""End-to-end resilience: chaos in, bit-identical results out.

The acceptance bar for the resilience layer: a run with seeded fault
injection must complete, produce exactly the fault-free result, recover
transient faults *below* the middleware's slave-failure machinery
(``slaves_failed == 0``), and account for everything it did in
telemetry. ``REPRO_FAULT_RATE`` lets CI sweep the error rate (0 / 0.05 /
0.2) without editing the test.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro import RunConfig, run
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.apps import make_bundle
from repro.core.api import run_serial
from repro.data.dataset import DatasetReader, build_dataset
from repro.errors import WorkerFailure
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore

#: CI sweeps these (see the `faults` job): 0.0, 0.05, 0.2.
FAULT_RATE = float(os.environ.get("REPRO_FAULT_RATE", "0.1"))
REVOKE_RATE = float(os.environ.get("REPRO_REVOKE_RATE", "0.05"))

DATASET = DatasetSpec(
    total_bytes=4096 * 8, num_files=4, chunk_bytes=256 * 8, record_bytes=8
)


def materialize(app_key="histogram", dataset=DATASET, **params):
    bundle = make_bundle(app_key, dataset.total_units, seed=2011, **params)
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        dataset, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    return bundle, index, stores


def test_transient_injection_run_is_bit_identical_and_accounted():
    bundle, index, stores = materialize()
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())

    spec = FaultSpec(transient_rate=FAULT_RATE, seed=7)
    trace = EventLog()
    metrics = MetricsRegistry()
    faulted = {
        site: FaultInjector(s, spec, trace=trace) for site, s in stores.items()
    }
    runtime = CloudBurstingRuntime(
        bundle.app, index, faulted,
        ComputeSpec(local_cores=2, cloud_cores=2),
        retry_policy=RetryPolicy(
            max_attempts=8, base_backoff=0.001, max_backoff=0.01
        ),
        trace=trace, metrics=metrics, join_timeout=60.0,
    )
    result = runtime.run()
    telemetry = result.telemetry

    # Bit-identical to the fault-free oracle.
    np.testing.assert_array_equal(result.value, oracle)

    # Transient faults are absorbed *below* the slave-failure machinery.
    assert telemetry.slaves_failed == 0
    assert telemetry.jobs_reexecuted == 0
    assert telemetry.total_jobs == index.num_chunks

    injected = sum(inj.counters.transient for inj in faulted.values())
    assert telemetry.faults_injected == injected
    if FAULT_RATE > 0:
        assert injected > 0
        assert telemetry.retries > 0
        # Every injected transient was retried (none leaked to a failure).
        assert telemetry.retries >= injected
        assert trace.of_kind("fault_injected")
        assert trace.of_kind("retry")
    else:
        assert injected == 0 and telemetry.retries == 0

    # The metrics registry saw the same story.
    snap = metrics.snapshot()
    assert snap["counters"]["retries"] == telemetry.retries
    assert snap["counters"]["faults_injected"] == injected
    reads = sum(inj.counters.reads for inj in faulted.values())
    assert snap["counters"]["storage_attempts"] == reads


def test_hedging_run_with_latency_spikes_still_exact():
    bundle, index, stores = materialize()
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())
    spec = FaultSpec(
        transient_rate=FAULT_RATE / 2,
        latency_rate=0.3, latency_seconds=0.05, seed=13,
    )
    faulted = {site: FaultInjector(s, spec) for site, s in stores.items()}
    runtime = CloudBurstingRuntime(
        bundle.app, index, faulted,
        ComputeSpec(local_cores=2, cloud_cores=2),
        retry_policy=RetryPolicy(
            max_attempts=8, base_backoff=0.001, max_backoff=0.01,
            hedge_after=0.01,
        ),
        join_timeout=60.0,
    )
    result = runtime.run()
    np.testing.assert_array_equal(result.value, oracle)
    assert result.telemetry.slaves_failed == 0
    # Latency spikes (50 ms) dwarf the hedge threshold (10 ms): hedges fire.
    assert result.telemetry.hedges > 0


def test_facade_chaos_run_via_env_rate():
    clean = run("histogram", DATASET, RunConfig(mode="runtime", seed=2011))
    chaotic = run(
        "histogram", DATASET,
        RunConfig(
            mode="runtime", seed=2011,
            faults=FaultSpec(transient_rate=FAULT_RATE, seed=29),
            retry=RetryPolicy(max_attempts=8, base_backoff=0.001,
                              max_backoff=0.01),
        ),
    )
    np.testing.assert_array_equal(chaotic.value, clean.value)
    assert chaotic.telemetry.slaves_failed == 0


def test_crash_recovery_telemetry_matches_injected_failures():
    """Satellite: injected whole-slave crashes are fully accounted.

    Combines the two recovery layers: the fault hook kills exactly one
    slave, and the telemetry must show exactly that — one failure, every
    one of the victim's jobs re-executed, final reduction unchanged.
    """
    bundle, index, stores = materialize(bins=32)
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())

    victim_jobs = []
    fired = threading.Event()

    def crash_after_two(slave_id: int, job) -> None:
        if slave_id != 1 or fired.is_set():
            return
        victim_jobs.append(job.job_id)
        if len(victim_jobs) > 2:
            fired.set()
            raise WorkerFailure("injected crash")

    trace = EventLog()
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
        tuning=MiddlewareTuning(units_per_group=100),
        fault_hook=crash_after_two, trace=trace, join_timeout=60.0,
    )
    result = runtime.run()
    assert fired.is_set()
    np.testing.assert_array_equal(result.value, oracle)

    telemetry = result.telemetry
    assert telemetry.slaves_failed == 1
    # The victim completed two jobs and died holding a third; all of the
    # work it ever touched is re-executed.
    assert telemetry.jobs_reexecuted == len(victim_jobs)
    assert len(trace.of_kind("slave_failed")) == 1
    assert len(trace.of_kind("job_reexecuted")) == telemetry.jobs_reexecuted
    # Jobs the victim *completed* before dying are processed twice; the
    # in-flight one only ever completes on a survivor.
    completed_by_victim = len(victim_jobs) - 1
    assert telemetry.total_jobs == index.num_chunks + completed_by_victim


def test_spot_revocation_sweep_is_bit_identical_and_accounted():
    """Satellite: spot revocations ride the same recovery rails as
    crashes. At any swept ``REPRO_REVOKE_RATE`` the result matches the
    serial oracle bit for bit, every revocation is traced, and the
    ledger separates ``slaves_revoked`` from generic ``slaves_failed``.
    """
    from repro.options import ScaleOptions

    # 128 jobs: at every swept rate the seeded schedule fires well inside
    # each cloud slave's job share, however the scheduler interleaves.
    bundle, index, stores = materialize(
        dataset=DatasetSpec(
            total_bytes=32768 * 8, num_files=4, chunk_bytes=256 * 8,
            record_bytes=8,
        )
    )
    oracle = run_serial(bundle.app, DatasetReader(index, stores).read_all_chunks())

    trace = EventLog()
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
        scale=ScaleOptions(revocation=f"rate={REVOKE_RATE},seed=11"),
        trace=trace, join_timeout=60.0,
    )
    result = runtime.run()
    np.testing.assert_array_equal(result.value, oracle)

    telemetry = result.telemetry
    assert telemetry.slaves_failed == 0
    assert telemetry.slaves_revoked == len(trace.of_kind("revocation"))
    if REVOKE_RATE > 0:
        # One of the two cloud slaves hits its seeded revocation ordinal;
        # the survivor is protected by the revoker's keep-one floor.
        assert telemetry.slaves_revoked == 1
        assert telemetry.jobs_reexecuted > 0
    else:
        assert telemetry.slaves_revoked == 0
        assert telemetry.jobs_reexecuted == 0


def test_permanent_faults_fail_fast_through_retry_layer():
    """A key that can never be read burns no retry budget: the error
    surfaces immediately (and would escalate to the middleware's
    slave-failure recovery, which cannot conjure unreachable bytes)."""
    from repro.errors import PermanentStorageError

    bundle, index, stores = materialize()
    spec = FaultSpec(permanent_substrings=("part-00000",))
    faulted = {site: FaultInjector(s, spec) for site, s in stores.items()}
    reader = DatasetReader(
        index, faulted, retrieval_threads=4,
        retry=RetryPolicy(max_attempts=5, base_backoff=0.0, max_backoff=0.0),
    )
    bad = next(j for j in index.jobs() if j.file_id == 0)
    with pytest.raises(PermanentStorageError):
        reader.read_job(bad, from_site=CLOUD_SITE)  # remote, 4 connections
    # Not a single retry was spent on it.
    assert reader.resilience.retries == 0
    hit = faulted[LOCAL_SITE].counters
    assert hit.permanent >= 1
