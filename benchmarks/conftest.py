"""Shared benchmark fixtures.

Benchmarks run the simulator at the paper's full scale (120 GB / 960 jobs
— simulated, so each configuration takes well under a second of wall
time). Each bench regenerates one paper artifact and prints it in the
paper's layout with paper-vs-measured columns.
"""

from __future__ import annotations

import pytest

PAPER_APPS = ("knn", "kmeans", "pagerank")


def print_block(text: str) -> None:
    """Print a report block with surrounding whitespace so pytest -s output
    stays readable."""
    print()
    print(text)
    print()


@pytest.fixture(scope="session")
def paper_apps():
    return PAPER_APPS
