"""Extension bench — iterative workloads compound the bursting overhead.

The paper's evaluation is single-pass, but PageRank converges over many
power iterations and every pass re-exchanges the ~300 MB reduction object
across the WAN. This bench projects a 10-iteration PageRank run from
per-pass simulations and decomposes the cumulative hybrid overhead,
showing that the reduction-object exchange — modest per pass — becomes
the dominant recurring cost for iterative workloads, which sharpens the
paper's Section IV-B feasibility warning.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_iterative_projection
from repro.bench.reporting import render_table

from conftest import print_block

ITERATIONS = 10


@pytest.mark.benchmark(group="iterative")
def test_iterative_pagerank_projection(benchmark):
    result = benchmark.pedantic(
        lambda: run_iterative_projection("pagerank", "env-50/50", ITERATIONS),
        rounds=1, iterations=1,
    )
    hybrid_total = result["hybrid_total"]
    base_total = result["base_total"]
    overhead = result["total_overhead"]
    robj = result["robj_overhead"]
    rows = [
        ("hybrid total", f"{hybrid_total:.0f} s"),
        ("centralized total", f"{base_total:.0f} s"),
        ("cumulative overhead", f"{overhead:.0f} s"),
        ("  of which robj exchange", f"{robj:.0f} s"),
        ("robj share of overhead", f"{robj / overhead * 100:.0f}%"),
    ]
    print_block(
        f"PageRank x {ITERATIONS} iterations (env-50/50 vs env-local)\n"
        + render_table(("quantity", "value"), rows)
    )
    # Per-pass overhead is ~7%; across iterations it stays proportional...
    assert overhead == pytest.approx(
        sum(h.makespan - b.makespan for h, b in
            zip(result["hybrid_passes"], result["base_passes"])), rel=1e-9
    )
    # ...and the recurring robj exchange is the single largest component
    # (vs the single-pass view where retrieval noise hides it).
    assert robj > 0.5 * overhead
    # Roughly 10 x the single-pass global reduction (~37.7 s each).
    assert 250.0 < robj < 600.0
