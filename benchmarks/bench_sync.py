"""Benchmarks of the WAN-shrinking global-reduction stack.

The paper's headline non-scalable cost is global reduction: at sync time
every master ships its full reduction object over the WAN. Three
artifacts pin what the sync stack buys back:

* **Iterative wire-byte cut** — pagerank power iterations through one
  :class:`~repro.runtime.driver.CloudBurstingRuntime` with
  ``delta+zlib``: the codec's per-channel baselines persist across
  passes, so the converging rank vector turns successive uploads into
  lane-diffed, byte-shuffled, compressed deltas. The cumulative dense
  bytes must exceed the cumulative wire bytes by **>= 5x**.
* **Tree beats star on a shared ingress trunk** — a six-site burst (five
  cloud masters behind one 4 MB/s trunk into the campus head) with a
  64 MB reduction object, simulated per topology. Star's five concurrent
  flows strangle each other on the trunk; tree merges en route and ships
  a level at a time. Narrated against the closed-form
  :func:`~repro.network.transfer.sync_aggregation_time` estimates.
* **Default overhead** — the dense/star/barrier default constructs zero
  sync machinery (the driver normalizes it to the legacy path); paired
  timing against ``sync=None`` must stay within 2 %.

Run directly with ``--smoke`` for a quick CI-sized pass of the first two
artifacts (same assertions); ``--out report.json`` writes the WAN-bytes
accounting as a machine-readable artifact.
"""

from __future__ import annotations

import argparse
import json
import timeit
from dataclasses import replace

from conftest import print_block

from repro.apps import make_bundle
from repro.apps.base import get_profile
from repro.bench.reporting import render_table
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.sync import SyncSpec
from repro.data.dataset import build_dataset
from repro.network.topology import Link
from repro.network.transfer import sync_aggregation_time, transfer_time
from repro.runtime.driver import CloudBurstingRuntime
from repro.sim.multisite import (
    CrossPath,
    MultiSiteConfig,
    MultiSiteSimulation,
    SiteSpec,
)
from repro.sim.storagemodel import StorePath
from repro.storage.objectstore import ObjectStore
from repro.units import MB


# -- iterative wire-byte cut -------------------------------------------------


def _pagerank_runtime(units: int, *, sync: SyncSpec | None):
    bundle = make_bundle("pagerank", units)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=units * rb,
        num_files=4,
        chunk_bytes=(units // 16) * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
        tuning=MiddlewareTuning(units_per_group=max(units // 16, 256)),
        sync=sync,
    )
    return bundle, runtime


def run_iterative(units: int, iterations: int):
    """Pagerank power iterations over one runtime (so the codec's delta
    baselines survive between passes); one accounting row per pass."""
    bundle, runtime = _pagerank_runtime(
        units,
        sync=SyncSpec(encoding="delta", compress="zlib", topology="tree"),
    )
    rows = []
    for i in range(iterations):
        result = runtime.run()
        t = result.telemetry
        dense = t.sync_bytes_sent + t.sync_bytes_saved
        rows.append({
            "iteration": i + 1,
            "wire_bytes": t.sync_bytes_sent,
            "dense_bytes": dense,
            "ratio": dense / max(t.sync_bytes_sent, 1),
        })
        bundle.app.update(result.value)
    return rows


def render_iterative(rows) -> str:
    out = [f"{'iter':>5} {'wire bytes':>11} {'dense bytes':>12} {'cut':>7}"]
    for r in rows:
        out.append(
            f"{r['iteration']:>5} {r['wire_bytes']:>11,} "
            f"{r['dense_bytes']:>12,} {r['ratio']:>6.1f}x"
        )
    wire = sum(r["wire_bytes"] for r in rows)
    dense = sum(r["dense_bytes"] for r in rows)
    out.append(
        f"{'total':>5} {wire:>11,} {dense:>12,} {dense / wire:>6.1f}x"
    )
    return "\n".join(out)


def check_iterative(rows) -> dict:
    wire = sum(r["wire_bytes"] for r in rows)
    dense = sum(r["dense_bytes"] for r in rows)
    assert wire > 0 and dense > wire
    cut = dense / wire
    # The acceptance bar: delta+zlib must cut the WAN reduction traffic
    # of an iterative pagerank by at least 5x against dense uploads.
    assert cut >= 5.0, f"WAN-byte cut only {cut:.2f}x"
    return {
        "iterations": len(rows),
        "wire_bytes": wire,
        "dense_bytes": dense,
        "bytes_saved": dense - wire,
        "cut": cut,
    }


# -- tree vs star on a shared head-ingress trunk -----------------------------

N_SITES = 6  # one campus head + five cloud masters


def shared_trunk_config() -> MultiSiteConfig:
    """Six equal sites, a full 40 MB/s cross mesh, and one skinny 4 MB/s
    trunk into the head site that every inbound reduction flow shares."""
    def storage_path(name):
        return StorePath(
            name=name, bandwidth=200 * MB, per_connection_cap=20 * MB,
            request_latency=0.001,
        )

    names = ["campus"] + [f"cloud{i}" for i in range(1, N_SITES)]
    sites = tuple(
        SiteSpec(name=name, cores=2, data_files=1, storage=storage_path(name))
        for name in names
    )
    cross = tuple(
        CrossPath(
            src=a, dst=b,
            path=StorePath(
                name=f"{a}->{b}", bandwidth=40 * MB,
                per_connection_cap=20 * MB, request_latency=0.05,
            ),
        )
        for a in names for b in names if a != b
    )
    return MultiSiteConfig(
        name="wan-tax",
        app="kmeans",
        dataset=DatasetSpec(
            total_bytes=N_SITES * 4 * MB,
            num_files=N_SITES,
            chunk_bytes=1 * MB,
            record_bytes=4,
        ),
        sites=sites,
        cross_paths=cross,
        head_site="campus",
        head_ingress_bandwidth=4 * MB,
    )


def run_topologies():
    """Simulate the shared-trunk burst per topology, plus the modeled
    wire-savings row (sim_ratio 0.1 stands in for delta+zlib)."""
    config = shared_trunk_config()
    profile = replace(get_profile("kmeans"), robj_bytes=64 * MB)
    out = {}
    for topology in ("star", "tree", "ring"):
        report = MultiSiteSimulation(
            config, profile=profile, sync=SyncSpec(topology=topology)
        ).run()
        report.validate()
        out[topology] = report
    out["tree+delta"] = MultiSiteSimulation(
        config, profile=profile,
        sync=SyncSpec(topology="tree", sim_ratio=0.1),
    ).run()
    return out


def render_topologies(reports) -> str:
    rows = [
        (name, f"{r.makespan:.2f}", f"{r.global_reduction:.2f}")
        for name, r in reports.items()
    ]
    # Closed forms explain the gap: star pushes all n-1 flows through the
    # trunk, while tree merges upstream on the 40 MB/s mesh and only the
    # root's fan-in (2 flows at fanout 2) ever touches the trunk.
    trunk = Link("sites", "head", bandwidth=4 * MB, latency=0.05,
                 per_flow_cap=20 * MB)
    star_trunk = sync_aggregation_time(
        trunk, 64 * MB, N_SITES - 1, merge_seconds=0.05, topology="star"
    )
    tree_trunk = transfer_time(trunk, 64 * MB, concurrent_flows=2)
    return (
        render_table(("topology", "makespan", "sync s"), rows)
        + f"\nclosed-form trunk crossings: star ships 5 flows "
        f"({star_trunk:.1f}s), tree only the root fan-in "
        f"({tree_trunk:.1f}s) — upstream levels ride the 40 MB/s mesh"
    )


def check_topologies(reports) -> dict:
    star, tree, ring = (reports[t].makespan for t in ("star", "tree", "ring"))
    assert tree < star, (tree, star)
    assert ring < star, (ring, star)
    assert reports["tree+delta"].makespan < tree
    return {name: r.makespan for name, r in reports.items()}


def test_tree_beats_star_on_shared_ingress_trunk():
    reports = run_topologies()
    print_block(
        f"six-site burst, 64 MB reduction object, 4 MB/s head trunk\n"
        + render_topologies(reports)
    )
    check_topologies(reports)


def test_iterative_pagerank_delta_cuts_wan_bytes_five_fold():
    rows = run_iterative(65536, 20)
    print_block("iterative pagerank, delta+zlib over a tree\n"
                + render_iterative(rows))
    check_iterative(rows)


def test_default_sync_spec_overhead_under_two_percent():
    """The dense/star/barrier default must be free: the driver normalizes
    it away, so a paired timing against ``sync=None`` bounds the cost of
    merely *having* the sync stack in the tree."""
    units = 16384

    def make(sync):
        _, runtime = _pagerank_runtime(units, sync=sync)
        return runtime

    bare = make(None)
    default = make(SyncSpec())
    # The default spec constructs no machinery at all.
    assert default.sync is None and default._sync_codec is None
    result = default.run()
    assert result.telemetry.sync_uploads == 0
    assert result.telemetry.sync_bytes_sent == 0

    # Interleave the two series and alternate order (min-of-reps then
    # isolates the per-run cost from scheduler noise).
    reps, number = 8, 2
    bare_times, default_times = [], []
    for i in range(reps):
        pair = [("bare", bare), ("default", default)]
        if i % 2:
            pair.reverse()
        for label, runtime in pair:
            t = timeit.timeit(runtime.run, number=number)
            (bare_times if label == "bare" else default_times).append(t)
    t_bare = min(bare_times) / number
    t_default = min(default_times) / number
    overhead = (t_default - t_bare) / t_bare
    print_block(
        f"default-spec overhead: bare {t_bare * 1e3:.2f}ms, "
        f"default SyncSpec() {t_default * 1e3:.2f}ms "
        f"-> {overhead * 100:+.2f}%"
    )
    assert overhead < 0.02, (
        f"default sync path costs {overhead * 100:.2f}% "
        f"({t_bare * 1e3:.2f}ms -> {t_default * 1e3:.2f}ms)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: fewer pagerank passes, same assertions",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the WAN-bytes accounting to PATH as JSON",
    )
    args = parser.parse_args(argv)

    units, iterations = (65536, 8) if args.smoke else (65536, 20)
    rows = run_iterative(units, iterations)
    print(render_iterative(rows))
    iterative = check_iterative(rows)
    print(f"ok: delta+zlib cut WAN reduction bytes {iterative['cut']:.1f}x "
          f"over {iterations} pagerank passes")

    reports = run_topologies()
    print(render_topologies(reports))
    topologies = check_topologies(reports)
    print("ok: tree and ring beat star on the shared head-ingress trunk")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "iterative_pagerank": iterative,
                    "multisite_makespans": topologies,
                },
                fh, indent=2,
            )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
