"""Ablation — pooling-based load balancing vs static assignment, under
EC2 performance variability.

Section III-B: "the pooling based job distribution enables fairness in
load balancing ... slave nodes that have higher throughput would naturally
be ensured to process more jobs"; Section IV-B: the pooling design "helps
normalizing these unpredictable performance changes" of virtualized EC2.

This bench quantifies both statements: it sweeps the EC2 jitter sigma and
runs each point twice — with the paper's on-demand pooling, and with a
static round-robin pre-partition of the job pool (no stealing, no
rate-matching). Pooling's advantage should exist at every sigma and grow
with it.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import env_config
from repro.bench.reporting import render_table
from repro.cluster.variability import VariabilityModel
from repro.sim.calibration import PAPER_CALIBRATION
from repro.sim.simulation import CloudBurstSimulation

from conftest import print_block

SIGMAS = (0.0, 0.12, 0.3, 0.5)


def _run(app: str, env: str, sigma: float | None, static: bool) -> float:
    calibration = PAPER_CALIBRATION
    if sigma is not None:
        calibration = calibration.with_changes(
            cloud_variability=VariabilityModel(sigma=sigma)
        )
    config = env_config(app, env)
    sim = CloudBurstSimulation(config, calibration, static_assignment=static)
    return sim.run().makespan


@pytest.mark.benchmark(group="ablation")
def test_pooling_vs_static_under_jitter(benchmark):
    """Balanced placement: static matches pooling when the clusters are
    perfectly rate-matched, and falls behind as EC2 jitter grows —
    pooling 'normalizes unpredictable performance changes'."""

    def sweep():
        return {
            sigma: (
                _run("kmeans", "env-50/50", sigma, static=False),
                _run("kmeans", "env-50/50", sigma, static=True),
            )
            for sigma in SIGMAS
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for sigma, (pooled, static) in results.items():
        gap = (static / pooled - 1) * 100
        rows.append((f"{sigma:.2f}", f"{pooled:.1f}", f"{static:.1f}",
                     f"{gap:+.1f}%"))
    print_block(
        "Pooling vs static assignment under EC2 jitter (kmeans, env-50/50)\n"
        + render_table(
            ("EC2 sigma", "pooling (s)", "static (s)", "static penalty"), rows
        )
    )
    # When everything is balanced and calm, static is competitive (it may
    # even edge out pooling's end-game noise slightly)...
    calm_gap = results[SIGMAS[0]][1] / results[SIGMAS[0]][0]
    assert 0.95 < calm_gap < 1.05, calm_gap
    # ...but its penalty grows with variability: stragglers can't shed work.
    gaps = [results[s][1] / results[s][0] for s in SIGMAS]
    assert gaps[-1] > gaps[0] + 0.01, gaps
    assert gaps[-1] > 1.02, gaps


@pytest.mark.benchmark(group="ablation")
def test_pooling_vs_static_under_skew(benchmark):
    """Skewed placement: a static 50/50 job split cannot react to the WAN
    costs of stolen chunks; on-demand pooling re-rates the clusters and
    wins outright (knn, env-17/83)."""

    def both():
        return (
            _run("knn", "env-17/83", None, static=False),
            _run("knn", "env-17/83", None, static=True),
        )

    pooled, static = benchmark.pedantic(both, rounds=1, iterations=1)
    print_block(
        f"knn env-17/83: pooling {pooled:.1f}s vs static split {static:.1f}s "
        f"({(static / pooled - 1) * 100:+.1f}%)"
    )
    assert static > pooled * 1.05, (pooled, static)
