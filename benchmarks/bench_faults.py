"""Benchmarks of the resilience layer: overhead when idle, throughput under chaos.

Two acceptance bounds and one characterization:

* **Idle overhead** — with no faults injected, routing every read through
  the retry layer (policy + stats + per-range RNG + breaker accounting)
  must cost < 2 % extra wall time against the policy-free fast path,
  measured on the storage path alone (fetch the same chunks with and
  without a policy).
* **Chaos throughput** — with 5 % and 20 % seeded transient error rates,
  the runtime completes with bit-exact results; the bench reports
  achieved throughput with and without hedging so the cost of recovery
  is a number, not a guess.
"""

from __future__ import annotations

import time
import timeit

from conftest import print_block

from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    PlacementSpec,
)
from repro.data.dataset import DatasetReader, build_dataset
from repro.resilience import FaultInjector, FaultSpec, RetryPolicy
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore
from repro.storage.retrieval import ChunkRetriever

UNITS = 16384
RECORD = 8
DATASET = DatasetSpec(
    total_bytes=UNITS * RECORD,
    num_files=4,
    chunk_bytes=(UNITS // 64) * RECORD,
    record_bytes=RECORD,
)


def materialize():
    bundle = make_bundle("histogram", UNITS, seed=2011)
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        DATASET, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    return bundle, index, stores


def drain(retriever: ChunkRetriever, index) -> int:
    total = 0
    for job in index.jobs():
        entry = index.entry(job.file_id)
        total += len(
            retriever.fetch(entry.path, job.offset, job.nbytes)
        )
    return total


def test_retry_layer_idle_overhead_under_two_percent():
    """No faults -> the resilience plumbing must be nearly free."""
    bundle = make_bundle("histogram", UNITS, seed=2011)
    store = ObjectStore()  # one backing store so every job is drainable
    index = build_dataset(
        DATASET, PlacementSpec(0.5), bundle.schema, bundle.block_fn,
        {LOCAL_SITE: store, CLOUD_SITE: store},
    )
    bare = ChunkRetriever(store, threads=4)
    guarded = ChunkRetriever(
        store, threads=4,
        policy=RetryPolicy(max_attempts=4, base_backoff=0.001),
    )
    expected = sum(e.nbytes for e in index.files)

    reps = 7
    assert drain(bare, index) >= expected  # warm up + sanity
    assert drain(guarded, index) >= expected
    t_bare = min(
        timeit.timeit(lambda: drain(bare, index), number=1)
        for _ in range(reps)
    )
    t_guarded = min(
        timeit.timeit(lambda: drain(guarded, index), number=1)
        for _ in range(reps)
    )
    overhead = (t_guarded - t_bare) / t_bare
    print_block(
        f"retry-layer idle overhead: bare {t_bare * 1e3:.2f}ms, "
        f"guarded {t_guarded * 1e3:.2f}ms -> {overhead * 100:+.2f}%"
    )
    assert overhead < 0.02, (
        f"idle retry layer costs {overhead * 100:.2f}% "
        f"({t_bare * 1e3:.2f}ms -> {t_guarded * 1e3:.2f}ms)"
    )


def run_under_faults(rate: float, hedge: bool) -> tuple[float, dict]:
    bundle, index, stores = materialize()
    # Latency spikes ride along with the transients so hedging has
    # stragglers to race; without them every in-memory read finishes
    # long before any plausible hedge threshold.
    spec = FaultSpec(
        transient_rate=rate, latency_rate=0.15, latency_seconds=0.05,
        seed=31,
    )
    if rate > 0:
        stores = {s: FaultInjector(st, spec) for s, st in stores.items()}
    policy = RetryPolicy(
        max_attempts=8, base_backoff=0.0005, max_backoff=0.005,
        hedge_after=0.01 if hedge else None,
    )
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
        retry_policy=policy, join_timeout=120.0,
    )
    started = time.perf_counter()
    result = runtime.run()
    wall = time.perf_counter() - started
    telemetry = result.telemetry
    return wall, {
        "value": result.value,
        "retries": telemetry.retries,
        "hedges": telemetry.hedges,
        "faults": telemetry.faults_injected,
        "slaves_failed": telemetry.slaves_failed,
    }


def test_throughput_under_transient_error_rates():
    """5 % and 20 % transient errors: exact results, measured cost."""
    import numpy as np

    baseline_wall, baseline = run_under_faults(0.0, hedge=False)
    rows = [f"{'rate':>6} {'hedged':>7} {'wall':>9} {'retries':>8} "
            f"{'hedges':>7} {'faults':>7}"]
    rows.append(f"{0.0:>6.0%} {'-':>7} {baseline_wall * 1e3:>8.1f}ms "
                f"{baseline['retries']:>8} {baseline['hedges']:>7} "
                f"{baseline['faults']:>7}")
    for rate in (0.05, 0.20):
        for hedge in (False, True):
            wall, info = run_under_faults(rate, hedge)
            np.testing.assert_array_equal(info["value"], baseline["value"])
            assert info["slaves_failed"] == 0
            assert info["faults"] > 0 and info["retries"] > 0
            if hedge:
                assert info["hedges"] > 0
            rows.append(
                f"{rate:>6.0%} {str(hedge):>7} {wall * 1e3:>8.1f}ms "
                f"{info['retries']:>8} {info['hedges']:>7} {info['faults']:>7}"
            )
    print_block("throughput under injected transient errors\n" + "\n".join(rows))
