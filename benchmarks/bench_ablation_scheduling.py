"""Ablation — the head scheduler's two heuristics (Section III-B).

* **Consecutive job assignment**: groups of consecutive chunks keep the
  storage node streaming; scattered assignment forces seeks and the
  random-read penalty.
* **Minimum-contention stealing**: stolen jobs are drawn from the file
  the fewest nodes are reading, spreading WAN fetches across per-file
  service limits.

Both are evaluated at env-17/83 (maximum stealing) for knn (maximum
retrieval sensitivity).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_scheduling_ablation
from repro.bench.reporting import render_table

from conftest import print_block


@pytest.mark.benchmark(group="ablation")
def test_scheduling_heuristics_ablation(benchmark):
    out = benchmark.pedantic(
        lambda: run_scheduling_ablation("knn", "env-17/83"), rounds=1, iterations=1
    )
    rows = [
        (label, f"{report.makespan:.1f}",
         f"{(report.makespan / out['baseline'].makespan - 1) * 100:+.1f}%")
        for label, report in out.items()
    ]
    print_block(
        "Scheduling-heuristic ablation (knn, env-17/83)\n"
        + render_table(("variant", "makespan (s)", "vs baseline"), rows)
    )
    base = out["baseline"].makespan
    # Dropping consecutive assignment costs local-disk streaming throughput.
    assert out["no-consecutive"].makespan > base * 1.02
    # Dropping min-contention stealing concentrates WAN readers on one file.
    assert out["no-min-contention"].makespan > base * 1.005
    # Both off is clearly worse than baseline (the two ablations interact,
    # so it need not exceed the worst single one).
    assert out["neither"].makespan > base * 1.015
