"""Ablation — reduction-object size (Section IV-B's feasibility warning).

"If the reduction object size increases relative to input data size, it
may not be feasible to use cloud bursting due to the increasing costs of
transferring the reduction object." This bench sweeps the object size on
the pagerank profile in env-50/50 and shows the global-reduction cost
growing from negligible to dominant.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_robj_ablation
from repro.bench.reporting import render_table

from conftest import print_block

SIZES_MB = (1, 30, 100, 300, 1000)


@pytest.mark.benchmark(group="ablation")
def test_robj_size_ablation(benchmark):
    out = benchmark.pedantic(
        lambda: run_robj_ablation("pagerank", "env-50/50", SIZES_MB),
        rounds=1, iterations=1,
    )
    rows = [
        (f"{mb} MB", f"{out[mb].global_reduction:.2f}", f"{out[mb].makespan:.1f}")
        for mb in SIZES_MB
    ]
    print_block(
        "Reduction-object size sweep (pagerank profile, env-50/50)\n"
        + render_table(("robj size", "global reduction (s)", "makespan (s)"), rows)
    )
    gr = [out[mb].global_reduction for mb in SIZES_MB]
    assert all(a < b for a, b in zip(gr, gr[1:])), gr  # strictly growing
    # WAN push dominates at 1 GB: minutes of pure transfer.
    assert out[1000].global_reduction > 60.0
    assert out[1].global_reduction < 1.0
    # The paper's 300 MB case: tens of seconds.
    assert 10.0 < out[300].global_reduction < 120.0
