"""Ablation — Generalized Reduction vs Map-Reduce (Section III-A).

The paper argues that even Map-Reduce *with* a combiner still generates
every intermediate (key, value) pair on the map side, paying memory and
grouping costs that the fused Generalized Reduction never incurs. This
bench executes word count three ways over the same token stream —
Map-Reduce, Map-Reduce + combine, Generalized Reduction — and reports
intermediate-pair counts and wall time.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps.wordcount import WordCountApp
from repro.baselines.mapreduce import mr_wordcount
from repro.bench.reporting import render_table
from repro.core.api import run_serial
from repro.data.generators import zipf_tokens
from repro.data.records import TOKEN_SCHEMA

from conftest import print_block

TOKENS = 200_000
SPLITS = 40
VOCAB = 2_000


@pytest.mark.benchmark(group="ablation")
def test_api_comparison(benchmark):
    tokens = zipf_tokens(TOKENS, VOCAB, seed=17)
    splits = [tokens[i:i + TOKENS // SPLITS]
              for i in range(0, TOKENS, TOKENS // SPLITS)]
    chunks = [TOKEN_SCHEMA.encode(s) for s in splits]

    def run_all():
        results = {}
        t0 = time.perf_counter()
        mr_plain, stats_plain = mr_wordcount(splits, combine=False)
        results["map-reduce"] = (time.perf_counter() - t0, stats_plain, mr_plain)
        t0 = time.perf_counter()
        mr_comb, stats_comb = mr_wordcount(splits, combine=True)
        results["map-reduce+combine"] = (time.perf_counter() - t0, stats_comb,
                                         mr_comb)
        t0 = time.perf_counter()
        gr = run_serial(WordCountApp(), chunks, units_per_group=4096)
        results["generalized-reduction"] = (time.perf_counter() - t0, None, gr)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, (wall, stats, _result) in results.items():
        emitted = stats.pairs_emitted if stats else 0
        shuffled = stats.pairs_shuffled if stats else 0
        rows.append((label, emitted, shuffled, f"{wall * 1000:.0f} ms"))
    print_block(
        "API comparison: word count over the same 200k-token stream\n"
        + render_table(
            ("engine", "pairs emitted", "pairs shuffled", "wall time"), rows
        )
    )

    # All three agree.
    assert results["map-reduce"][2] == results["map-reduce+combine"][2]
    assert results["map-reduce"][2] == results["generalized-reduction"][2]
    # Combine cuts shuffle traffic but not map-side pair generation.
    plain, comb = results["map-reduce"][1], results["map-reduce+combine"][1]
    assert comb.pairs_shuffled < plain.pairs_shuffled / 2
    assert comb.pairs_emitted == plain.pairs_emitted == TOKENS
    # Generalized Reduction materializes no intermediate pairs at all, and
    # its vectorized fused pipeline wins on wall time.
    assert results["generalized-reduction"][0] < results["map-reduce+combine"][0]
