"""Ablation — intra-node reduction-object sharing (the FREERIDE trade).

The middleware gives each slave a private reduction object and merges at
the end (full replication). This bench measures the alternatives on a
real multi-threaded execution — full locking (one shared object, one
lock) and chunk-merge (private scratch merged per chunk) — and confirms
the design choice: replication is fastest because nothing serializes,
at the price of one object copy per worker; locking inverts the trade.
(Timing assertions are loose: the point is the ordering, not the ratio.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import make_bundle
from repro.bench.reporting import render_table
from repro.core.shmem import ShmemStrategy, run_threaded

from conftest import print_block

TOTAL_UNITS = 65_536
CHUNK_UNITS = 2048
THREADS = 4


@pytest.mark.benchmark(group="ablation")
def test_shmem_strategy_tradeoff(benchmark):
    bundle = make_bundle("histogram", TOTAL_UNITS, bins=4096)
    chunks = [
        bundle.schema.encode(bundle.block_fn(start, CHUNK_UNITS, start))
        for start in range(0, TOTAL_UNITS, CHUNK_UNITS)
    ]

    def sweep():
        out = {}
        for strategy in ShmemStrategy:
            result, stats = run_threaded(
                bundle.app, chunks, threads=THREADS, strategy=strategy,
                units_per_group=512,
            )
            out[strategy] = (result, stats)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        (s.value, f"{stats.wall_seconds * 1000:.1f} ms", stats.robj_copies,
         stats.robj_bytes, stats.lock_acquisitions)
        for s, (_r, stats) in results.items()
    ]
    print_block(
        f"Intra-node reduction strategies (histogram, {THREADS} threads)\n"
        + render_table(
            ("strategy", "wall", "robj copies", "robj bytes", "lock acq."),
            rows,
        )
    )
    # Same answer from every strategy.
    base = results[ShmemStrategy.FULL_REPLICATION][0]
    for result, _stats in results.values():
        np.testing.assert_array_equal(result, base)
    # The memory/contention trade the middleware's choice is based on:
    repl = results[ShmemStrategy.FULL_REPLICATION][1]
    lock = results[ShmemStrategy.FULL_LOCKING][1]
    merge = results[ShmemStrategy.CHUNK_MERGE][1]
    assert repl.robj_copies > lock.robj_copies
    assert repl.lock_acquisitions == 0 < lock.lock_acquisitions
    # Full locking serializes every reduction; it is never faster than the
    # contention-free strategies beyond noise.
    fastest_free = min(repl.wall_seconds, merge.wall_seconds)
    assert lock.wall_seconds > 0.5 * fastest_free