"""Benchmarks of the observability layer — including its *absence*.

The acceptance bound for the unified observability layer: with tracing
disabled, the instrumentation hooks must be free. Every emission site is
an attribute load plus an ``is not None`` test, so the cost of a
disabled hook is measured directly here, scaled by a generous estimate
of hook executions in the smallest micro-bench configuration (the
960-job head-scheduler conversation of ``bench_micro.py``), and asserted
to stay under 2 % of that bench's measured wall time.

Also measures the enabled paths so their cost is a number, not a guess:
``EventLog.emit`` (lock + stamp + append), histogram ``observe``
(bisect + adds), and ``to_perfetto`` over a realistic-size log.
"""

from __future__ import annotations

import timeit

import pytest

from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.index import build_index
from repro.core.scheduler import HeadScheduler
from repro.data.dataset import build_dataset
from repro.obs import EventLog, MetricsRegistry, RunMonitor, to_perfetto
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore


def drive_scheduler(trace=None) -> int:
    """The bench_micro 960-job conversation, optionally traced."""
    spec = DatasetSpec.paper(record_bytes=4)
    index = build_index(spec, PlacementSpec(0.5))
    sched = HeadScheduler(index.jobs(), MiddlewareTuning(), trace=trace)
    sched.register_cluster("a", LOCAL_SITE)
    sched.register_cluster("b", CLOUD_SITE)
    served = 0
    turn = 0
    groups = []
    while True:
        cluster = "a" if turn % 2 == 0 else "b"
        turn += 1
        group = sched.request_jobs(cluster)
        if group is None:
            break
        groups.append(group.group_id)
        served += len(group)
    for gid in groups:
        sched.complete_group(gid)
    return served


def test_disabled_hook_overhead_under_two_percent():
    """The no-op hook path costs < 2 % of the smallest micro-bench."""
    # Per-check cost of the attribute-load + None-test gate — the exact
    # disabled-path shape at every emission site (`trace` is an instance
    # attribute set in __init__; the slave hot loop additionally hoists
    # it to a local). Measured as a timeit statement with the bare loop
    # subtracted, so the number is the guard itself, not Python call
    # overhead around it.
    setup = "class C:\n    def __init__(self): self.trace = None\nc = C()"
    checks = 200_000
    reps = 5
    t_guard = min(
        timeit.timeit("if c.trace is not None: pass", setup=setup,
                      number=checks)
        for _ in range(reps)
    )
    t_loop = min(
        timeit.timeit("pass", number=checks) for _ in range(reps)
    )
    per_check = max(0.0, t_guard - t_loop) / checks

    # Wall time of the smallest bench_micro configuration, untraced.
    best = min(
        timeit.timeit(drive_scheduler, number=1) for _ in range(reps)
    )

    # A 960-job run executes ~5 hooks per job (fetch/compute start+end,
    # job_done) plus per-group control-plane hooks; budget 10 per job to
    # be generous.
    hooks_per_run = 960 * 10
    overhead = per_check * hooks_per_run
    fraction = overhead / best
    assert fraction < 0.02, (
        f"disabled trace hooks cost {fraction * 100:.2f}% of the "
        f"scheduler micro-bench ({overhead * 1e6:.0f}us over {best * 1e3:.1f}ms)"
    )


def _wordcount_runtime(units: int, *, monitor: RunMonitor | None = None):
    bundle = make_bundle("wordcount", units)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=units * rb,
        num_files=4,
        chunk_bytes=(units // 16) * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    return CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
        monitor=monitor,
    )


def test_monitor_overhead_under_two_percent():
    """The live run monitor must be invisible: disabled (the default) the
    driver constructs no machinery at all, and even an *enabled* monitor
    at a realistic interval — sampler thread, probe closure, sample ring —
    costs < 2 % of a small runtime workload. Paired min-of-reps timing
    with alternating order, same discipline as bench_sync's default-spec
    bound."""
    import timeit as _timeit

    units = 16384
    bare = _wordcount_runtime(units)
    assert bare.monitor is None  # disabled-by-default builds nothing
    monitor = RunMonitor(0.02)
    monitored = _wordcount_runtime(units, monitor=monitor)

    reps, number = 8, 2
    bare_times, monitored_times = [], []
    for i in range(reps):
        pair = [("bare", bare), ("monitored", monitored)]
        if i % 2:
            pair.reverse()
        for label, runtime in pair:
            t = _timeit.timeit(runtime.run, number=number)
            (bare_times if label == "bare" else monitored_times).append(t)
    t_bare = min(bare_times) / number
    t_monitored = min(monitored_times) / number
    assert monitor.samples_taken > 0  # it really sampled
    overhead = (t_monitored - t_bare) / t_bare
    print(f"\nmonitor overhead: bare {t_bare * 1e3:.2f}ms, "
          f"monitored {t_monitored * 1e3:.2f}ms -> {overhead * 100:+.2f}% "
          f"({monitor.samples_taken} samples)")
    assert overhead < 0.02, (
        f"enabled monitor costs {overhead * 100:.2f}% "
        f"({t_bare * 1e3:.2f}ms -> {t_monitored * 1e3:.2f}ms)"
    )


def test_traced_scheduler_still_correct():
    trace = EventLog()
    assert drive_scheduler(trace) == 960
    # The alternating-cluster conversation steals whenever a cluster's own
    # files run dry; every steal is in the log.
    for event in trace.of_kind("steal"):
        assert event.cluster in ("a", "b")


@pytest.mark.benchmark(group="obs")
def test_obs_emit_throughput(benchmark):
    """Locked, stamped append into the shared event log."""
    log = EventLog()
    log.start()

    benchmark(lambda: log.emit("job_done", worker=0, job_id=1))
    assert len(log) > 0


@pytest.mark.benchmark(group="obs")
def test_obs_histogram_observe(benchmark):
    """Per-job latency observation (bisect + two adds under a lock)."""
    hist = MetricsRegistry().histogram("fetch_seconds")

    benchmark(lambda: hist.observe(0.0123))
    assert hist.count > 0


@pytest.mark.benchmark(group="obs")
def test_obs_perfetto_export(benchmark):
    """Converting a 4k-interval log to a Perfetto document."""
    log = EventLog()
    t = 0.0
    for job in range(2000):
        worker = job % 8
        log.record(t, "fetch_start", worker=worker, job_id=job)
        log.record(t + 0.01, "fetch_end", worker=worker, job_id=job)
        log.record(t + 0.01, "compute_start", worker=worker, job_id=job)
        log.record(t + 0.03, "compute_end", worker=worker, job_id=job)
        log.record(t + 0.03, "job_done", worker=worker, job_id=job)
        t += 0.004

    doc = benchmark(lambda: to_perfetto(log))
    assert sum(1 for e in doc["traceEvents"] if e["ph"] == "X") == 4000
