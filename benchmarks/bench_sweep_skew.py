"""Extension bench — the data-skew continuum.

Figure 3 samples three skews; this bench fills in the curve from 100%
local data down to 0%, under the paper's halved hybrid compute split, for
all three applications. The curve is U-shaped: the best placement matches
the compute split (~50/50), and *both* extremes pay — all-cloud placement
makes the campus half fetch everything over the WAN, and all-local
placement makes the EC2 half do the same in the other direction. This
quantifies the paper's Section IV-B remark that "having a perfect
distribution would likely minimize the total slowdown".
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_skew_sweep
from repro.bench.reporting import render_table

from conftest import PAPER_APPS, print_block

FRACTIONS = (1.0, 0.75, 0.5, 1.0 / 3.0, 0.25, 1.0 / 6.0, 0.0)


@pytest.mark.benchmark(group="sweep")
def test_skew_continuum(benchmark):
    def regenerate():
        return {app: run_skew_sweep(app, FRACTIONS) for app in PAPER_APPS}

    sweeps = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for app, sweep in sweeps.items():
        for fraction in FRACTIONS:
            report = sweep[fraction]
            stolen = sum(c.jobs_stolen for c in report.clusters.values())
            rows.append(
                (app, f"{fraction * 100:.0f}% local",
                 f"{report.makespan:.1f}", stolen)
            )
    print_block(
        "Data-skew continuum (halved hybrid compute)\n"
        + render_table(("app", "placement", "makespan (s)", "stolen"), rows)
    )

    for app, sweep in sweeps.items():
        best = min(FRACTIONS, key=lambda f: sweep[f].makespan)
        # The optimum placement matches the compute split: 50/50 (or the
        # adjacent sample — jitter can shift it one notch).
        assert 0.25 <= best <= 0.75, (app, best)
        # Both extremes pay a WAN penalty relative to the matched placement
        # for the retrieval-sensitive apps.
        matched = sweep[0.5].makespan
        if app != "kmeans":
            assert sweep[1.0].makespan > matched, app
            assert sweep[0.0].makespan > matched, app
        # Stealing is U-shaped too: minimal at the matched placement.
        def total_stolen(f):
            return sum(c.jobs_stolen for c in sweep[f].clusters.values())

        assert total_stolen(0.5) <= total_stolen(1.0), app
        assert total_stolen(0.5) <= total_stolen(0.0), app
