"""Table II — global reduction, idle time, and total slowdown (seconds).

Regenerates the paper's overhead decomposition for the nine hybrid runs
and asserts its headline shapes:

* global reduction is milliseconds-scale for knn/kmeans (tiny reduction
  objects) and tens of seconds for pagerank (~300 MB object over the WAN);
* total slowdown grows with data skew for the retrieval-sensitive apps;
* the all-apps average hybrid slowdown lands in the paper's ballpark
  (15.55%; we accept anything under 35% with correct orderings).
"""

from __future__ import annotations

import pytest

from repro.bench.configs import HYBRID_ENVS
from repro.bench.experiments import mean_hybrid_slowdown, run_figure3, table2_rows
from repro.bench.reporting import render_table2

from conftest import PAPER_APPS, print_block


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark):
    def regenerate():
        return {app: run_figure3(app) for app in PAPER_APPS}

    runs = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_block(render_table2(runs))

    mean = mean_hybrid_slowdown(runs) * 100.0
    print_block(
        f"Average hybrid slowdown over the 9 runs: {mean:.2f}% (paper: 15.55%)"
    )
    assert 0.0 < mean < 35.0

    for app, run in runs.items():
        rows = {r["env"]: r for r in table2_rows(run)}
        for env, row in rows.items():
            assert row["total_slowdown"] > -5.0, (app, env)
            assert row["idle_local"] >= 0 and row["idle_ec2"] >= 0
        gr = [rows[e]["global_reduction"] for e in HYBRID_ENVS]
        if app == "pagerank":
            assert all(10.0 < g < 120.0 for g in gr), gr  # paper: 36.6-42.5 s
        else:
            assert all(g < 1.0 for g in gr), (app, gr)  # paper: 66-76 ms

    # knn's slowdown outgrows kmeans' at every skew (retrieval- vs
    # compute-bound — the paper's central contrast).
    for env in HYBRID_ENVS:
        knn_ratio = runs["knn"].slowdown_ratio(env)
        kmeans_ratio = runs["kmeans"].slowdown_ratio(env)
        assert knn_ratio > kmeans_ratio, (env, knn_ratio, kmeans_ratio)
