"""Micro-benchmarks of the middleware's hot primitives.

Unlike the figure/table benches (which run the simulator once and assert
shapes), these measure real wall time of the core building blocks across
many rounds, so regressions in the data path show up directly:

* reduction-object merge throughput (the global-reduction inner loop);
* top-k offer (knn's per-group local reduction);
* head-scheduler request/ack throughput (the control plane);
* DES engine event throughput (the simulator's speed limit);
* fair-share link flow churn (the simulator's hottest model);
* record decode over a zero-copy view (the read path's hot primitive).

Run as a script, this file is the slave-substrate bench: it executes the
same CPU-bound run on ``slave_mode="thread"`` and ``"process"`` and
reports the throughputs side by side, asserting the data path stayed
copy-free (``bytes_copied == 0``) in both. CI runs ``--smoke`` in each
mode; the full run additionally demands the GIL-free substrate deliver a
>= 3x speedup when the machine actually has the cores for it.
"""

from __future__ import annotations

import argparse
import os

import numpy as np
import pytest

import repro
from repro.config import ComputeSpec, MiddlewareTuning, PlacementSpec
from repro.core.index import build_index
from repro.core.reduction import ArrayReduction, TopKReduction
from repro.core.scheduler import HeadScheduler
from repro.config import DatasetSpec, LOCAL_SITE, CLOUD_SITE
from repro.sim.engine import Environment
from repro.sim.linkmodel import FairShareLink


@pytest.mark.benchmark(group="micro")
def test_micro_array_merge(benchmark):
    """Merging two 8 MB array reduction objects (pagerank-style)."""
    a = ArrayReduction((1024 * 1024,), data=np.random.default_rng(0).random(1024 * 1024))
    b = ArrayReduction((1024 * 1024,), data=np.random.default_rng(1).random(1024 * 1024))

    benchmark(lambda: a.merge(b))
    assert a.data.shape == (1024 * 1024,)


@pytest.mark.benchmark(group="micro")
def test_micro_topk_offer(benchmark):
    """Offering a 4096-candidate batch into a k=1000 top-k object."""
    rng = np.random.default_rng(7)
    robj = TopKReduction(1000)
    scores = rng.random(4096)
    ids = rng.integers(0, 10**9, size=4096)

    benchmark(lambda: robj.offer(scores, ids))
    assert len(robj.scores) <= 1000


@pytest.mark.benchmark(group="micro")
def test_micro_scheduler_throughput(benchmark):
    """A full 960-job assignment conversation (requests + acks)."""
    spec = DatasetSpec.paper(record_bytes=4)

    def drive():
        index = build_index(spec, PlacementSpec(0.5))
        sched = HeadScheduler(index.jobs(), MiddlewareTuning())
        sched.register_cluster("a", LOCAL_SITE)
        sched.register_cluster("b", CLOUD_SITE)
        served = 0
        turn = 0
        groups = []
        while True:
            cluster = "a" if turn % 2 == 0 else "b"
            turn += 1
            group = sched.request_jobs(cluster)
            if group is None:
                break
            groups.append(group.group_id)
            served += len(group)
        for gid in groups:
            sched.complete_group(gid)
        return served

    served = benchmark(drive)
    assert served == 960


@pytest.mark.benchmark(group="micro")
def test_micro_des_event_throughput(benchmark):
    """10k timeout events through the DES kernel."""

    def drive():
        env = Environment()

        def ticker():
            for _ in range(100):
                yield env.timeout(1.0)

        for _ in range(100):
            env.process(ticker())
        env.run()
        return env.events_processed

    events = benchmark(drive)
    assert events >= 10_000


@pytest.mark.benchmark(group="micro")
def test_micro_link_flow_churn(benchmark):
    """400 staggered flows through one fair-share link."""

    def drive():
        env = Environment()
        link = FairShareLink(env, bandwidth=1000.0, per_flow_cap=50.0,
                             group_cap=200.0)

        def sender(i):
            yield env.timeout(i * 0.01)
            yield link.transfer(25.0, group=i % 7)

        for i in range(400):
            env.process(sender(i))
        env.run()
        return link.stats.flows_completed

    done = benchmark(drive)
    assert done == 400


@pytest.mark.benchmark(group="micro")
def test_micro_decode_view(benchmark):
    """Decoding a 1 MB chunk from a read-only memoryview (zero-copy)."""
    from repro.data.chunks import readonly_view
    from repro.data.records import VALUE_SCHEMA

    blob = readonly_view(np.random.default_rng(3).random(131_072).tobytes())

    decoded = benchmark(lambda: VALUE_SCHEMA.decode(blob))
    assert decoded.shape == (131_072, 1)
    assert not decoded.flags.writeable


# -- substrate bench (script entrypoint) -------------------------------------


def _run_once(app: str, spec: DatasetSpec, *, slave_mode: str, workers: int,
              seed: int):
    """One single-site run: every read same-site, so the whole data path
    must be served as views (bytes_copied == 0)."""
    config = repro.RunConfig(
        mode="runtime",
        slave_mode=slave_mode,
        placement=PlacementSpec(1.0),
        compute=ComputeSpec(local_cores=workers, cloud_cores=0),
        tuning=MiddlewareTuning(allow_stealing=False),
        seed=seed,
    )
    result = repro.run(app, spec, config)
    t = result.telemetry
    assert t.bytes_copied == 0, (
        f"{slave_mode} run copied {t.bytes_copied} B on the hot read loop"
    )
    assert t.zero_copy_reads == t.total_jobs
    return result


def run_substrate_bench(
    *, smoke: bool, workers: int, units: int, slave_mode: str, seed: int
) -> dict:
    """Thread vs process slaves on a CPU-bound app; returns the timings."""
    app = "kmeans"
    units = 4096 if smoke else units
    rb = repro.make_bundle(app, units).schema.record_bytes
    spec = DatasetSpec(
        total_bytes=units * rb,
        num_files=4,
        chunk_bytes=(units // 16) * rb,
        record_bytes=rb,
    )
    modes = ("thread", "process") if slave_mode == "both" else (slave_mode,)
    serial = repro.run(app, spec, repro.RunConfig(mode="serial", seed=seed))
    timings: dict = {"app": app, "units": units, "workers": workers}
    for mode in modes:
        result = _run_once(app, spec, slave_mode=mode, workers=workers,
                           seed=seed)
        np.testing.assert_allclose(
            np.asarray(serial.value), np.asarray(result.value),
            rtol=1e-12, atol=1e-15,
        )
        wall = result.telemetry.wall_seconds
        timings[mode] = wall
        print(f"{mode:>8}: {wall:8.3f}s  "
              f"{units / wall:12.0f} units/s  "
              f"zero-copy reads {result.telemetry.zero_copy_reads}, "
              f"copied {result.telemetry.bytes_copied} B")
    if "thread" in timings and "process" in timings:
        speedup = timings["thread"] / timings["process"]
        timings["speedup"] = speedup
        print(f"process-slave speedup: {speedup:.2f}x "
              f"({workers} workers, {os.cpu_count()} cores)")
        if not smoke and (os.cpu_count() or 1) >= workers:
            # Only a real multi-core box can cash the GIL-free win in.
            assert speedup >= 3.0, (
                f"expected >= 3x from process slaves at {workers} workers, "
                f"got {speedup:.2f}x"
            )
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="thread- vs process-slave substrate bench"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized workload, correctness-only")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--units", type=int, default=65536,
                        help="data units for the full (non-smoke) run")
    parser.add_argument("--slave-mode", default="both",
                        choices=("thread", "process", "both"))
    parser.add_argument("--seed", type=int, default=2011)
    args = parser.parse_args(argv)
    run_substrate_bench(
        smoke=args.smoke, workers=args.workers, units=args.units,
        slave_mode=args.slave_mode, seed=args.seed,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
