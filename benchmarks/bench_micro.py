"""Micro-benchmarks of the middleware's hot primitives.

Unlike the figure/table benches (which run the simulator once and assert
shapes), these measure real wall time of the core building blocks across
many rounds, so regressions in the data path show up directly:

* reduction-object merge throughput (the global-reduction inner loop);
* top-k offer (knn's per-group local reduction);
* head-scheduler request/ack throughput (the control plane);
* DES engine event throughput (the simulator's speed limit);
* fair-share link flow churn (the simulator's hottest model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MiddlewareTuning, PlacementSpec
from repro.core.index import build_index
from repro.core.reduction import ArrayReduction, TopKReduction
from repro.core.scheduler import HeadScheduler
from repro.config import DatasetSpec, LOCAL_SITE, CLOUD_SITE
from repro.sim.engine import Environment
from repro.sim.linkmodel import FairShareLink


@pytest.mark.benchmark(group="micro")
def test_micro_array_merge(benchmark):
    """Merging two 8 MB array reduction objects (pagerank-style)."""
    a = ArrayReduction((1024 * 1024,), data=np.random.default_rng(0).random(1024 * 1024))
    b = ArrayReduction((1024 * 1024,), data=np.random.default_rng(1).random(1024 * 1024))

    benchmark(lambda: a.merge(b))
    assert a.data.shape == (1024 * 1024,)


@pytest.mark.benchmark(group="micro")
def test_micro_topk_offer(benchmark):
    """Offering a 4096-candidate batch into a k=1000 top-k object."""
    rng = np.random.default_rng(7)
    robj = TopKReduction(1000)
    scores = rng.random(4096)
    ids = rng.integers(0, 10**9, size=4096)

    benchmark(lambda: robj.offer(scores, ids))
    assert len(robj.scores) <= 1000


@pytest.mark.benchmark(group="micro")
def test_micro_scheduler_throughput(benchmark):
    """A full 960-job assignment conversation (requests + acks)."""
    spec = DatasetSpec.paper(record_bytes=4)

    def drive():
        index = build_index(spec, PlacementSpec(0.5))
        sched = HeadScheduler(index.jobs(), MiddlewareTuning())
        sched.register_cluster("a", LOCAL_SITE)
        sched.register_cluster("b", CLOUD_SITE)
        served = 0
        turn = 0
        groups = []
        while True:
            cluster = "a" if turn % 2 == 0 else "b"
            turn += 1
            group = sched.request_jobs(cluster)
            if group is None:
                break
            groups.append(group.group_id)
            served += len(group)
        for gid in groups:
            sched.complete_group(gid)
        return served

    served = benchmark(drive)
    assert served == 960


@pytest.mark.benchmark(group="micro")
def test_micro_des_event_throughput(benchmark):
    """10k timeout events through the DES kernel."""

    def drive():
        env = Environment()

        def ticker():
            for _ in range(100):
                yield env.timeout(1.0)

        for _ in range(100):
            env.process(ticker())
        env.run()
        return env.events_processed

    events = benchmark(drive)
    assert events >= 10_000


@pytest.mark.benchmark(group="micro")
def test_micro_link_flow_churn(benchmark):
    """400 staggered flows through one fair-share link."""

    def drive():
        env = Environment()
        link = FairShareLink(env, bandwidth=1000.0, per_flow_cap=50.0,
                             group_cap=200.0)

        def sender(i):
            yield env.timeout(i * 0.01)
            yield link.transfer(25.0, group=i % 7)

        for i in range(400):
            env.process(sender(i))
        env.run()
        return link.stats.flows_completed

    done = benchmark(drive)
    assert done == 400
