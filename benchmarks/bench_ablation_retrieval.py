"""Ablation — multi-threaded chunk retrieval (Section III-B).

The paper's slaves open multiple retrieval threads because one S3
connection is bandwidth-capped. This bench sweeps connections per slave on
env-cloud (all data in S3, all compute on EC2) and shows throughput
scaling until the site trunk saturates.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_retrieval_ablation
from repro.bench.reporting import render_table

from conftest import print_block

THREADS = (1, 2, 4, 8, 16)


@pytest.mark.benchmark(group="ablation")
def test_retrieval_threads_ablation(benchmark):
    out = benchmark.pedantic(
        lambda: run_retrieval_ablation("knn", "env-cloud", THREADS),
        rounds=1, iterations=1,
    )
    rows = []
    for n in THREADS:
        report = out[n]
        cluster = report.cluster("cloud-cluster")
        rows.append((n, f"{cluster.mean_retrieval:.1f}", f"{report.makespan:.1f}"))
    print_block(
        "Retrieval-connection sweep (knn, env-cloud)\n"
        + render_table(("connections", "mean retrieval (s)", "makespan (s)"), rows)
    )
    # Scaling region: 1 -> 4 connections cuts retrieval substantially.
    assert out[1].makespan > out[4].makespan * 1.5
    # Saturation region: 8 -> 16 changes little (trunk-bound).
    assert abs(out[8].makespan - out[16].makespan) < 0.15 * out[8].makespan
