"""Ablation — work stealing, the middleware's defining feature.

The paper's system exists to relax classic Map-Reduce's co-location
constraint: "to minimize the overall execution time, we allow for the
possibility that the data at one end is processed using computing
resources at another end, i.e., work stealing" (Section I). This bench
switches stealing off — each cluster may only process data stored at its
own site — and measures what the feature is worth at each data skew.

Expected shape: at 50/50 the placement matches the compute split and
stealing is worth little — it can even cost a few percent, because greedy
end-of-run steals occasionally move a job onto the slower WAN path (the
paper's own Table I shows zero steals at 50/50 for this reason); as skew
grows, the no-stealing run strands the data-poor cluster while the
data-rich one grinds alone, and the gap explodes (~+30% at 17/83).
"""

from __future__ import annotations

import pytest

from repro.bench.configs import HYBRID_ENVS
from repro.bench.experiments import run_stealing_ablation
from repro.bench.reporting import render_table

from conftest import print_block


@pytest.mark.benchmark(group="ablation")
def test_work_stealing_value(benchmark):
    results = benchmark.pedantic(
        lambda: run_stealing_ablation("knn", HYBRID_ENVS),
        rounds=1, iterations=1,
    )
    rows = []
    for env, (with_steal, without) in results.items():
        local_idle = max(c.idle for c in without.clusters.values())
        gain = (without.makespan / with_steal.makespan - 1) * 100
        rows.append(
            (env, f"{with_steal.makespan:.1f}", f"{without.makespan:.1f}",
             f"{local_idle:.1f}", f"{gain:+.1f}%")
        )
    print_block(
        "Work stealing on vs off (knn)\n"
        + render_table(
            ("env", "stealing (s)", "no stealing (s)",
             "stranded idle (s)", "stealing gain"),
            rows,
        )
    )
    gains = {
        env: without.makespan / with_steal.makespan
        for env, (with_steal, without) in results.items()
    }
    # Every skewed configuration benefits; the benefit grows with skew.
    assert gains["env-33/67"] > 1.05, gains
    assert gains["env-17/83"] > 1.25, gains
    assert gains["env-17/83"] > gains["env-33/67"] >= gains["env-50/50"] * 0.99
    # Without stealing, the data-poor cluster idles for a large fraction of
    # the 17/83 run — the stranded capacity stealing reclaims.
    _, without = results["env-17/83"]
    stranded = max(c.idle for c in without.clusters.values())
    assert stranded > 0.3 * without.makespan
    # Conservation still holds without stealing (both sites have compute).
    for env, (_w, without) in results.items():
        assert without.total_jobs == 960
        assert all(c.jobs_stolen == 0 for c in without.clusters.values())