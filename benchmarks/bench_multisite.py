"""Extension bench — bursting across two cloud providers.

Section II claims the framework "will also be applicable if the data
and/or processing power is spread across two different cloud providers."
This bench runs that experiment at the paper's dataset scale: the 120 GB
knn dataset split campus / provider-A / provider-B, compute drawn from all
three, with provider-B's cores slower and its WAN to the campus head
narrower. The scheduling policy needs no modification — the claim the
bench demonstrates.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import paper_dataset
from repro.bench.reporting import render_table
from repro.cluster.variability import EC2_VARIABILITY
from repro.sim.multisite import (
    CrossPath,
    MultiSiteConfig,
    MultiSiteSimulation,
    SiteSpec,
)
from repro.sim.storagemodel import StorePath
from repro.units import MB

from conftest import print_block


def _paths():
    campus = StorePath(name="campus-disk", bandwidth=600 * MB,
                       per_connection_cap=18 * MB, request_latency=0.0005,
                       seek_time=0.008, random_penalty=1.6)
    provider_a = StorePath(name="providerA-store", bandwidth=700 * MB,
                           per_connection_cap=5 * MB, request_latency=0.045)
    provider_b = StorePath(name="providerB-store", bandwidth=500 * MB,
                           per_connection_cap=4 * MB, request_latency=0.055)
    wan_fast = StorePath(name="wan-fast", bandwidth=120 * MB,
                         per_connection_cap=3 * MB, request_latency=0.065,
                         file_service_cap=64 * MB)
    wan_slow = StorePath(name="wan-slow", bandwidth=70 * MB,
                         per_connection_cap=2 * MB, request_latency=0.090,
                         file_service_cap=48 * MB)
    return campus, provider_a, provider_b, wan_fast, wan_slow


def two_provider_config(seed: int = 2011) -> MultiSiteConfig:
    campus, pa, pb, wan_fast, wan_slow = _paths()
    sites = (
        SiteSpec(name="campus", cores=16, data_files=10, storage=campus),
        SiteSpec(name="provider-a", cores=8, data_files=12, storage=pa,
                 compute_slowdown=1.1, variability=EC2_VARIABILITY,
                 intra_bandwidth=400 * MB),
        SiteSpec(name="provider-b", cores=8, data_files=10, storage=pb,
                 compute_slowdown=1.25, variability=EC2_VARIABILITY,
                 intra_bandwidth=300 * MB),
    )
    names = [s.name for s in sites]
    cross = tuple(
        CrossPath(src=a, dst=b,
                  path=wan_slow if "provider-b" in (a, b) else wan_fast)
        for a in names for b in names if a != b
    )
    return MultiSiteConfig(
        name="two-providers",
        app="knn",
        dataset=paper_dataset("knn"),
        sites=sites,
        cross_paths=cross,
        head_site="campus",
        seed=seed,
    )


@pytest.mark.benchmark(group="multisite")
def test_two_cloud_providers(benchmark):
    report = benchmark.pedantic(
        lambda: MultiSiteSimulation(two_provider_config()).run(),
        rounds=1, iterations=1,
    )
    rows = [
        (c.site, c.cores, c.jobs_processed, c.jobs_stolen,
         f"{c.mean_processing:.1f}", f"{c.mean_retrieval:.1f}",
         f"{c.sync:.1f}")
        for c in report.clusters.values()
    ]
    print_block(
        f"Two-provider bursting (knn, 120 GB): makespan {report.makespan:.1f} s, "
        f"global reduction {report.global_reduction:.3f} s\n"
        + render_table(
            ("site", "cores", "jobs", "stolen", "proc", "retr", "sync"), rows
        )
    )
    # Every job processed exactly once across the three sites.
    assert report.total_jobs == 960
    # All three sites contribute meaningfully (pooling balances throughput,
    # not core counts: campus has 2x the cores of each provider).
    jobs = {c.site: c.jobs_processed for c in report.clusters.values()}
    assert all(count > 100 for count in jobs.values()), jobs
    assert jobs["campus"] > jobs["provider-b"]
    # The run completes in the same regime as two-site hybrids (no
    # pathological serialization across providers).
    assert report.makespan < 800.0
    report.validate()
