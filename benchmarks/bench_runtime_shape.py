"""Extension bench — the *executable* runtime exhibits Figure 3's shape.

The figure/table benches use the simulator; this bench cross-checks the
real middleware: actual threads, actual bytes, with wall-clock traffic
shaping standing in for the WAN (slow shaped GETs for the "cloud" store).
At laptop scale it verifies the same qualitative ordering the paper
measured at testbed scale: centralized-local is fastest, and the hybrid's
penalty grows as data skews toward the remote store.

Wall-clock assertions are deliberately loose (2x bands) — this is a shape
check, not a timing benchmark.
"""

from __future__ import annotations

import pytest

from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.data.dataset import build_dataset
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore, TrafficShaper

from conftest import print_block

TOTAL_UNITS = 8192
FILES = 8
CHUNKS_PER_FILE = 4

#: "WAN": 40 ms per GET and ~2 MB/s per connection, vs an unshaped local
#: store — the same asymmetry the calibration gives the simulator.
WAN_SHAPER = TrafficShaper(request_latency=0.040, bandwidth=2 * 1024 * 1024)


def run_env(local_fraction: float, local_cores: int, cloud_cores: int) -> float:
    bundle = make_bundle("histogram", TOTAL_UNITS, bins=64)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=TOTAL_UNITS * rb,
        num_files=FILES,
        chunk_bytes=(TOTAL_UNITS // (FILES * CHUNKS_PER_FILE)) * rb,
        record_bytes=rb,
    )
    stores = {
        LOCAL_SITE: ObjectStore(),
        CLOUD_SITE: ObjectStore(shaper=WAN_SHAPER),
    }
    index = build_dataset(
        spec, PlacementSpec(local_fraction), bundle.schema, bundle.block_fn,
        stores,
    )
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=local_cores, cloud_cores=cloud_cores),
        tuning=MiddlewareTuning(retrieval_threads=4),
    )
    result = runtime.run()
    assert result.value.sum() == TOTAL_UNITS  # every unit counted once
    return result.telemetry.wall_seconds


@pytest.mark.benchmark(group="runtime-shape")
def test_runtime_reproduces_hybrid_ordering(benchmark):
    def sweep():
        return {
            "env-local": run_env(1.0, 4, 0),
            "env-50/50": run_env(0.5, 2, 2),
            "env-25/75": run_env(0.25, 2, 2),
        }

    walls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_block(
        "Executable runtime, shaped stores (seconds of wall time):\n"
        + "\n".join(f"  {env:10s} {t:.3f}s" for env, t in walls.items())
    )
    # Centralized local (unshaped store) beats both hybrids, whose slaves
    # pay real shaped latency for remote chunks.
    assert walls["env-local"] < walls["env-50/50"]
    assert walls["env-local"] < walls["env-25/75"]
    # More skew -> more shaped GETs -> slower (loose band: scheduling noise).
    assert walls["env-25/75"] > walls["env-50/50"] * 0.8
