"""Service-load bench: many tenants, many runs, one JobService.

The multi-run job service's acceptance bound, measured end to end:

* **Load shape** — ``--smoke`` drives 96 runs from 4 tenants (weights
  8/4/2/1) through a threaded :class:`repro.JobService` on a
  :class:`~repro.clock.FakeClock`, so the whole contended hour of
  virtual service time costs seconds of wall time and is deterministic.
* **Fairness gate** — over the dispatch prefix where every tenant still
  has work queued, each tenant's observed share of dispatches must be
  within 1.5x of its configured weight share (both directions).
* **Latency** — p50/p90/p99 submit-to-result latency per tenant, in
  virtual seconds, from the service's own run records.
* **Queue-depth timeline** — service backlog sampled at fixed virtual
  intervals, reconstructed from submit/dispatch timestamps.
* **Real-execution smoke** — a handful of real serial runs through the
  same API, proving the stub-exercised scheduler drives actual engines.

CI runs ``python bench_service.py --smoke --json service-load.json`` and
uploads the JSON artifact; the fairness and completion gates make the
job red when scheduling regresses.
"""

from __future__ import annotations

import argparse
import json

from repro import (
    DatasetSpec,
    FakeClock,
    JobService,
    RunConfig,
    RunState,
    TenantSpec,
)
from repro.facade import RunResult

from conftest import print_block

#: The smoke load: four tenants with strongly skewed weights, enough
#: runs each that every tenant stays backlogged deep into the run.
SMOKE_TENANTS = {"gold": 8.0, "silver": 4.0, "bronze": 2.0, "free": 1.0}
SMOKE_RUNS_PER_TENANT = 24  # 96 total, >= the 64-run acceptance floor
FAIRNESS_BOUND = 1.5

#: Virtual work per run, varied per tenant so the timeline is not flat.
WORK_SECONDS = {"gold": 2.0, "silver": 3.0, "bronze": 4.0, "free": 5.0}


def virtual_load(
    *,
    tenants: dict[str, float],
    runs_per_tenant: int,
    workers: int,
) -> dict:
    """Drive the synthetic load in virtual time; return the raw records."""
    clock = FakeClock()

    def execute(app, dataset, config):
        tenant = app.split("/", 1)[0]
        seconds = WORK_SECONDS.get(tenant, 3.0)
        clock.sleep(seconds)
        return RunResult(value=app, mode="stub", wall_seconds=seconds)

    service = JobService(
        workers=workers, clock=clock, executor=execute, name="bench"
    )
    for name, weight in tenants.items():
        service.register(TenantSpec(name, weight=weight))

    handles = []
    # Interleave submissions so no tenant gets a head start in the queue.
    for i in range(runs_per_tenant):
        for name in tenants:
            handles.append(
                service.submit(f"{name}/{i}", None, tenant=name, priority=0)
            )
    for handle in handles:
        handle.result(timeout=1_000_000)
    service.shutdown()
    makespan = clock.monotonic()
    clock.close()

    records = [
        {
            "run_id": run.run_id,
            "tenant": run.tenant,
            "submitted_at": run.submitted_at,
            "started_at": run.started_at,
            "finished_at": run.finished_at,
            "state": run.state.value,
        }
        for run in (h._record() for h in handles)
    ]
    return {"records": records, "makespan": makespan, "stats": service.stats()}


# -- metric derivation -------------------------------------------------------


def fairness_over_backlogged_prefix(
    records: list[dict], tenants: dict[str, float]
) -> dict:
    """Observed vs expected dispatch share while all tenants backlogged.

    The prefix ends at the dispatch where some tenant's backlog empties;
    inside it, stride scheduling should track the weight vector closely.
    """
    order = sorted(
        (r for r in records if r["started_at"] is not None),
        key=lambda r: (r["started_at"], r["run_id"]),
    )
    per_tenant_total = {name: 0 for name in tenants}
    for r in order:
        per_tenant_total[r["tenant"]] += 1
    remaining = dict(per_tenant_total)
    prefix = []
    for r in order:
        if min(remaining.values()) == 0:
            break
        prefix.append(r["tenant"])
        remaining[r["tenant"]] -= 1
    total_weight = sum(tenants.values())
    out = {"prefix_dispatches": len(prefix), "tenants": {}}
    worst = 1.0
    for name, weight in tenants.items():
        expected = len(prefix) * weight / total_weight
        got = prefix.count(name)
        ratio = (
            max(got / expected, expected / got)
            if got and expected
            else float("inf")
        )
        worst = max(worst, ratio)
        out["tenants"][name] = {
            "weight": weight,
            "dispatched": got,
            "expected": round(expected, 1),
            "ratio": round(ratio, 3),
        }
    out["worst_ratio"] = round(worst, 3)
    return out


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def latency_summary(records: list[dict]) -> dict:
    """Submit-to-result latency per tenant and overall, virtual seconds."""
    out = {}
    by_tenant: dict[str, list[float]] = {}
    for r in records:
        if r["finished_at"] is None:
            continue
        by_tenant.setdefault(r["tenant"], []).append(
            r["finished_at"] - r["submitted_at"]
        )
    everything = [v for values in by_tenant.values() for v in values]
    for name, values in sorted(by_tenant.items()):
        out[name] = {
            "p50_s": round(percentile(values, 0.50), 2),
            "p90_s": round(percentile(values, 0.90), 2),
            "p99_s": round(percentile(values, 0.99), 2),
        }
    out["all"] = {
        "p50_s": round(percentile(everything, 0.50), 2),
        "p90_s": round(percentile(everything, 0.90), 2),
        "p99_s": round(percentile(everything, 0.99), 2),
    }
    return out


def queue_depth_timeline(
    records: list[dict], makespan: float, *, points: int = 24
) -> list[dict]:
    """Backlog depth (submitted, not yet dispatched) at fixed ticks."""
    step = makespan / points if points else makespan
    ticks = [round(i * step, 2) for i in range(1, points + 1)]
    timeline = []
    for t in ticks:
        queued = sum(
            1
            for r in records
            if r["submitted_at"] <= t
            and (r["started_at"] is None or r["started_at"] > t)
        )
        running = sum(
            1
            for r in records
            if r["started_at"] is not None
            and r["started_at"] <= t
            and (r["finished_at"] is None or r["finished_at"] > t)
        )
        timeline.append({"t": t, "queued": queued, "running": running})
    return timeline


# -- real-execution smoke ----------------------------------------------------


def real_smoke(seed: int) -> dict:
    """A few real serial runs through the service API, end to end."""
    dataset = DatasetSpec(
        total_bytes=2048 * 4, num_files=4, chunk_bytes=512, record_bytes=4
    )
    config = RunConfig(mode="serial", seed=seed)
    with JobService(name="bench-real") as service:
        handles = [
            service.submit("wordcount", dataset, config, tenant=f"t{i % 2}")
            for i in range(4)
        ]
        values = [h.result().value for h in handles]
    assert all(values), "real serial run returned nothing"
    assert all(h.status().state is RunState.DONE for h in handles)
    return {"runs": len(handles), "mode": "serial", "all_done": True}


# -- report ------------------------------------------------------------------


def render(doc: dict) -> str:
    lines = ["service load bench"]
    cfg = doc["config"]
    lines.append(
        f"  {cfg['total_runs']} runs, {len(cfg['tenants'])} tenants, "
        f"{cfg['workers']} workers, virtual makespan "
        f"{doc['makespan_s']:.1f}s"
    )
    lines.append(
        f"  fairness over first {doc['fairness']['prefix_dispatches']} "
        f"dispatches (all tenants backlogged), bound {FAIRNESS_BOUND}x:"
    )
    for name, row in doc["fairness"]["tenants"].items():
        lines.append(
            f"    {name:<8} weight {row['weight']:>4}  "
            f"dispatched {row['dispatched']:>3}  "
            f"expected {row['expected']:>5}  ratio {row['ratio']:.3f}x"
        )
    lines.append(f"  worst fairness ratio: {doc['fairness']['worst_ratio']}x")
    lines.append("  submit-to-result latency (virtual seconds):")
    for name, row in doc["latency"].items():
        lines.append(
            f"    {name:<8} p50 {row['p50_s']:>7}  p90 {row['p90_s']:>7}  "
            f"p99 {row['p99_s']:>7}"
        )
    peak = max(point["queued"] for point in doc["queue_depth"])
    lines.append(f"  peak queue depth: {peak}")
    lines.append(
        f"  real-execution smoke: {doc['real']['runs']} serial runs, "
        f"all DONE"
    )
    return "\n".join(lines)


def run_bench(
    *,
    tenants: dict[str, float],
    runs_per_tenant: int,
    workers: int,
    seed: int,
) -> dict:
    load = virtual_load(
        tenants=tenants, runs_per_tenant=runs_per_tenant, workers=workers
    )
    records = load["records"]
    fairness = fairness_over_backlogged_prefix(records, tenants)
    doc = {
        "config": {
            "tenants": tenants,
            "runs_per_tenant": runs_per_tenant,
            "total_runs": len(records),
            "workers": workers,
            "seed": seed,
            "fairness_bound": FAIRNESS_BOUND,
        },
        "makespan_s": round(load["makespan"], 2),
        "fairness": fairness,
        "latency": latency_summary(records),
        "queue_depth": queue_depth_timeline(records, load["makespan"]),
        "real": real_smoke(seed),
    }

    # Gates: the bench is red, not merely informative, when these fail.
    assert len(records) >= 64, f"only {len(records)} runs (floor is 64)"
    assert len(tenants) >= 4, f"only {len(tenants)} tenants (floor is 4)"
    assert all(r["state"] == "done" for r in records), "non-DONE runs"
    assert fairness["worst_ratio"] <= FAIRNESS_BOUND, (
        f"fairness ratio {fairness['worst_ratio']}x exceeds "
        f"{FAIRNESS_BOUND}x bound: {fairness['tenants']}"
    )
    return doc


# -- pytest entry point (collected when benchmarks run under pytest) --------


def test_service_load_smoke():
    doc = run_bench(
        tenants=SMOKE_TENANTS,
        runs_per_tenant=SMOKE_RUNS_PER_TENANT,
        workers=8,
        seed=2011,
    )
    print_block(render(doc))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized load (96 runs / 4 tenants / 8 workers)",
    )
    parser.add_argument("--runs-per-tenant", type=int, default=None)
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument(
        "--json", metavar="PATH", help="write the load report to PATH"
    )
    args = parser.parse_args(argv)

    runs_per_tenant = args.runs_per_tenant or (
        SMOKE_RUNS_PER_TENANT if args.smoke else 64
    )
    doc = run_bench(
        tenants=SMOKE_TENANTS,
        runs_per_tenant=runs_per_tenant,
        workers=args.workers,
        seed=args.seed,
    )
    print_block(render(doc))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
