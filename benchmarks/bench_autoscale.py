"""Benchmarks of the elastic-bursting layer: adherence and disabled cost.

Three acceptance bounds, all pinned by the CI ``autoscale`` job
(``python bench_autoscale.py --smoke --json ...``):

* **Deadline adherence** — on a deterministic simulated workload whose
  one-slave makespan *misses* the deadline, the autoscaler must buy
  enough capacity to land within **10 %** of it (``makespan <=
  1.1 * deadline``).
* **Budget ceiling** — with a binding dollar cap (the uncapped run
  spends well past it), total accrued spend never exceeds the budget
  and the fleet stays smaller than the uncapped fleet.
* **Disabled-path overhead** — passing ``ScaleOptions()`` with
  autoscaling off must cost **< 2 %** of a real run. The driver nulls a
  disabled spec in its constructor, so the whole disabled path *is* the
  constructor check; the bench times exactly that delta against a full
  runtime run (paired full-run walls are recorded informationally —
  at this scale they are dominated by thread-scheduler noise).

The simulator scenarios are discrete-event and seeded, so deadline and
budget numbers are exact across machines; ``--smoke`` only shrinks the
wall-clock overhead workload.
"""

from __future__ import annotations

import argparse
import json
import timeit

from conftest import print_block

from repro.apps import make_bundle
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    PlacementSpec,
)
from repro.data.dataset import build_dataset
from repro.facade import RunConfig
from repro.options import ScaleOptions
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore

#: The simulated workload: cloud-heavy placement so the cloud-fleet size
#: actually moves the makespan (calibrated: 1 slave -> ~3.7 s,
#: 8 slaves -> ~2.1 s).
SIM_DATASET = DatasetSpec(
    total_bytes=131072 * 8, num_files=8, chunk_bytes=512 * 8, record_bytes=8
)
SIM_PLACEMENT = PlacementSpec(0.25)

#: Sits between the one-slave (~3.7 s) and full-fleet (~2.1 s) makespans:
#: a fixed fleet misses it, the controller can hit it.
DEADLINE = 3.2

#: At $1/slave-second the uncapped run spends ~$9.8; $7 binds the fleet
#: while leaving headroom over the floor fleet's unavoidable burn.
BUDGET = 7.0
DOLLARS_PER_SLAVE_HOUR = 3600.0


def sim_run(scale: ScaleOptions):
    import repro

    config = RunConfig(
        mode="simulate", seed=2011, placement=SIM_PLACEMENT, scale=scale
    )
    return repro.run("histogram", SIM_DATASET, config).sim_report


def collect_deadline() -> dict:
    """Deadline adherence on the simulator — deterministic, gated."""
    pinned_one = sim_run(ScaleOptions(autoscale=True, min_slaves=1, max_slaves=1))
    steered = sim_run(
        ScaleOptions(autoscale=True, deadline=DEADLINE, max_slaves=8)
    )
    assert pinned_one.makespan > DEADLINE, (
        "calibration broke: a single cloud slave should miss the deadline"
    )
    assert steered.slaves_added > 0, "controller never bought capacity"
    ratio = steered.makespan / DEADLINE
    assert ratio <= 1.10, (
        f"missed the deadline by {(ratio - 1) * 100:.1f}% "
        f"(makespan {steered.makespan:.3f}s vs deadline {DEADLINE}s); "
        f"bound is 10%"
    )
    return {
        "deadline_s": DEADLINE,
        "pinned_one_makespan_s": round(pinned_one.makespan, 3),
        "steered_makespan_s": round(steered.makespan, 3),
        "slaves_added": steered.slaves_added,
        "adherence_ratio": round(ratio, 4),
    }


def collect_budget() -> dict:
    """Budget ceiling on the simulator — deterministic, gated."""
    uncapped = sim_run(
        ScaleOptions(
            autoscale=True, max_slaves=8,
            dollars_per_slave_hour=DOLLARS_PER_SLAVE_HOUR,
        )
    )
    capped = sim_run(
        ScaleOptions(
            autoscale=True, budget=BUDGET, max_slaves=8,
            dollars_per_slave_hour=DOLLARS_PER_SLAVE_HOUR,
        )
    )
    assert uncapped.dollars_spent > BUDGET, (
        "calibration broke: the uncapped run must overspend the budget"
    )
    assert capped.dollars_spent <= BUDGET, (
        f"budget exceeded: ${capped.dollars_spent:.4f} > ${BUDGET:.4f}"
    )
    assert capped.slaves_added < uncapped.slaves_added, (
        "the cap never bound the fleet"
    )
    return {
        "budget_usd": BUDGET,
        "uncapped_spend_usd": round(uncapped.dollars_spent, 4),
        "capped_spend_usd": round(capped.dollars_spent, 4),
        "uncapped_slaves_added": uncapped.slaves_added,
        "capped_slaves_added": capped.slaves_added,
    }


def collect_overhead(*, units: int) -> dict:
    """Disabled-path cost — the constructor delta is gated at < 2 % of a
    real run; paired full-run walls are informational."""
    bundle = make_bundle("histogram", units, seed=2011)
    dataset = DatasetSpec(
        total_bytes=units * 8,
        num_files=4,
        chunk_bytes=(units // 64) * 8,
        record_bytes=8,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        dataset, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    compute = ComputeSpec(local_cores=2, cloud_cores=2)
    disabled = ScaleOptions()  # autoscale off, no revocation

    def build(scale):
        return CloudBurstingRuntime(
            bundle.app, index, stores, compute, scale=scale, join_timeout=60.0
        )

    reps, n = 7, 200
    t_ctor_bare = min(
        timeit.timeit(lambda: build(None), number=n) / n for _ in range(reps)
    )
    t_ctor_disabled = min(
        timeit.timeit(lambda: build(disabled), number=n) / n
        for _ in range(reps)
    )

    build(None).run()  # warm every cache before the timed walls
    bare_walls, disabled_walls = [], []
    for i in range(reps):
        pair = [(bare_walls, None), (disabled_walls, disabled)]
        if i % 2:
            pair.reverse()
        for sink, scale in pair:
            sink.append(timeit.timeit(lambda: build(scale).run(), number=1))
    t_run = min(bare_walls)

    ceremony = max(t_ctor_disabled - t_ctor_bare, 0.0)
    overhead = ceremony / t_run
    assert overhead < 0.02, (
        f"disabled scale path costs {overhead * 100:.3f}% of a real run "
        f"({ceremony * 1e6:.2f}us over {t_run * 1e3:.2f}ms); bound is 2%"
    )
    return {
        "ctor_bare_us": round(t_ctor_bare * 1e6, 3),
        "ctor_disabled_us": round(t_ctor_disabled * 1e6, 3),
        "run_ms": round(t_run * 1e3, 3),
        "overhead_pct": round(overhead * 100, 4),
        "paired_bare_min_ms": round(min(bare_walls) * 1e3, 3),
        "paired_disabled_min_ms": round(min(disabled_walls) * 1e3, 3),
    }


def collect(*, smoke: bool) -> dict:
    overhead_units = 65536 if smoke else 262144
    return {
        "config": {"smoke": smoke, "overhead_units": overhead_units},
        "deadline": collect_deadline(),
        "budget": collect_budget(),
        "overhead": collect_overhead(units=overhead_units),
    }


# -- pytest entry points (same gates, bench-suite sized) ---------------------


def test_deadline_adherence_within_ten_percent():
    print_block(json.dumps(collect_deadline(), indent=2))


def test_budget_cap_never_exceeded():
    print_block(json.dumps(collect_budget(), indent=2))


def test_disabled_path_overhead_under_two_percent():
    print_block(json.dumps(collect_overhead(units=65536), indent=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized wall-clock workload (sim scenarios are fixed)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the report to PATH as JSON"
    )
    args = parser.parse_args(argv)

    report = collect(smoke=args.smoke)
    for section, values in report.items():
        if section == "config":
            continue
        print(f"{section}:")
        for key, value in values.items():
            print(f"  {key:<24} {value}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    print("ok: deadline within 10%, budget never exceeded, "
          "disabled path < 2%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
