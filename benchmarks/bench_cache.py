"""Benchmarks of the chunk cache + prefetch pipeline.

Two acceptance bounds and one characterization:

* **Iterative payoff** — a remote-heavy kmeans (every chunk on the cloud,
  every core local, injected per-read latency standing in for the WAN)
  run twice over a shared :class:`~repro.cache.ChunkCache`: iteration 2
  must fetch **zero** remote bytes and finish measurably faster than
  iteration 1. The table prints per-iteration remote bytes, wall time,
  and hit/miss accounting.
* **Disabled overhead** — attaching a cache that never engages (every
  read is site-local, so the reader's ``remote`` check short-circuits
  before any cache code runs) must cost < 2 % extra wall time against a
  cache-free reader. With ``cache_bytes=0`` the facade constructs none
  of the machinery at all, so this bounds the worst case.

Run directly with ``--smoke`` for a quick CI-sized pass of the iterative
table (same assertions, smaller dataset).
"""

from __future__ import annotations

import argparse
import time
import timeit

from conftest import print_block

from repro.apps import make_bundle
from repro.cache import ChunkCache
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.data.dataset import DatasetReader, build_dataset
from repro.obs.metrics import MetricsRegistry
from repro.resilience import FaultInjector, FaultSpec
from repro.runtime.driver import CloudBurstingRuntime
from repro.storage.objectstore import ObjectStore

RECORD = 16  # kmeans point records


def kmeans_dataset(units: int) -> DatasetSpec:
    return DatasetSpec(
        total_bytes=units * RECORD,
        num_files=4,
        chunk_bytes=(units // 16) * RECORD,
        record_bytes=RECORD,
    )


def remote_heavy_kmeans(units: int, *, latency: float):
    """Everything on the cloud, all compute local, per-read latency
    injected so 'remote' costs something the cache can actually save."""
    bundle = make_bundle("kmeans", units, seed=2011, k=8)
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        kmeans_dataset(units), PlacementSpec(0.0), bundle.schema,
        bundle.block_fn, stores,
    )
    spec = FaultSpec(latency_rate=1.0, latency_seconds=latency, seed=7)
    stores = {site: FaultInjector(s, spec) for site, s in stores.items()}
    return bundle, index, stores


def run_iterations(units: int, iterations: int, *, latency: float):
    """Run the remote-heavy workload over one shared cache; returns one
    accounting row per iteration."""
    bundle, index, stores = remote_heavy_kmeans(units, latency=latency)
    registry = MetricsRegistry()
    cache = ChunkCache(64 << 20)
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=0),
        tuning=MiddlewareTuning(units_per_group=512),
        metrics=registry, cache=cache, prefetch=True,
    )
    remote_bytes = registry.counter("remote_bytes")
    rows = []
    seen = 0
    for i in range(iterations):
        started = time.perf_counter()
        result = runtime.run()
        wall = time.perf_counter() - started
        fetched = remote_bytes.value - seen
        seen = remote_bytes.value
        t = result.telemetry
        rows.append({
            "iteration": i + 1,
            "remote_bytes": fetched,
            "wall": wall,
            "hits": t.cache_hits,
            "misses": t.cache_misses,
        })
        bundle.app.update(result.value)
    return rows


def render_rows(rows) -> str:
    out = [f"{'iter':>5} {'remote bytes':>13} {'wall':>10} "
           f"{'hits':>6} {'misses':>7}"]
    for r in rows:
        out.append(
            f"{r['iteration']:>5} {r['remote_bytes']:>13,} "
            f"{r['wall'] * 1e3:>8.1f}ms {r['hits']:>6} {r['misses']:>7}"
        )
    return "\n".join(out)


def check_rows(rows) -> None:
    first, rest = rows[0], rows[1:]
    assert first["remote_bytes"] > 0 and first["misses"] > 0
    for row in rest:
        # Every byte of iteration >= 2 comes from the cache.
        assert row["remote_bytes"] == 0, row
        assert row["misses"] == 0, row
        assert row["hits"] == first["misses"], row
        assert row["wall"] < first["wall"], row


def test_second_iteration_fetches_zero_remote_bytes_and_is_faster():
    rows = run_iterations(8192, 3, latency=0.004)
    print_block("iterative kmeans over a shared chunk cache\n"
                + render_rows(rows))
    check_rows(rows)


def test_disabled_cache_overhead_under_two_percent():
    """A cache the reads never reach must be nearly free."""
    units = 65536
    bundle = make_bundle("kmeans", units, seed=2011, k=8)
    store = ObjectStore()
    # Many small chunks: read_job call count (where the disabled-cache
    # branch lives) dominates the timing, not the byte copies.
    spec = DatasetSpec(
        total_bytes=units * RECORD,
        num_files=8,
        chunk_bytes=(units // 256) * RECORD,
        record_bytes=RECORD,
    )
    index = build_dataset(
        spec, PlacementSpec(0.5), bundle.schema,
        bundle.block_fn, {LOCAL_SITE: store, CLOUD_SITE: store},
    )
    bare = DatasetReader(index, {LOCAL_SITE: store, CLOUD_SITE: store})
    cached = DatasetReader(
        index, {LOCAL_SITE: store, CLOUD_SITE: store}, cache=ChunkCache(1 << 20)
    )

    def drain(reader: DatasetReader) -> int:
        total = 0
        for job in index.jobs():
            # Reading from the chunk's own site: the cache never engages.
            site = index.entry(job.file_id).site
            total += len(reader.read_job(job, from_site=site))
        return total

    expected = sum(e.nbytes for e in index.files)
    assert drain(bare) >= expected  # warm up + sanity
    assert drain(cached) >= expected
    assert len(cached.cache) == 0  # the cache really never engaged

    # Interleave the two series (clock-frequency drift hits both alike)
    # and alternate which goes first (whoever runs second in a pair eats
    # the first's garbage); min-of-reps then isolates the per-call cost.
    reps, number = 12, 3
    bare_times, cached_times = [], []
    for i in range(reps):
        pair = [("bare", bare), ("cached", cached)]
        if i % 2:
            pair.reverse()
        for label, reader in pair:
            t = timeit.timeit(lambda: drain(reader), number=number)
            (bare_times if label == "bare" else cached_times).append(t)
    t_bare = min(bare_times) / number
    t_cached = min(cached_times) / number
    overhead = (t_cached - t_bare) / t_bare
    print_block(
        f"disabled-cache overhead: bare {t_bare * 1e3:.2f}ms, "
        f"cache attached (never hit) {t_cached * 1e3:.2f}ms "
        f"-> {overhead * 100:+.2f}%"
    )
    assert overhead < 0.02, (
        f"idle cache path costs {overhead * 100:.2f}% "
        f"({t_bare * 1e3:.2f}ms -> {t_cached * 1e3:.2f}ms)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run: tiny dataset, same zero-remote-bytes assertions",
    )
    args = parser.parse_args(argv)
    units = 2048 if args.smoke else 8192
    latency = 0.002 if args.smoke else 0.004
    rows = run_iterations(units, 3, latency=latency)
    print(render_rows(rows))
    check_rows(rows)
    print("ok: iterations >= 2 fetched zero remote bytes and were faster")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
