"""Figure 4 — system scalability with all data in S3.

One bench per sub-figure. Each sweeps (m, m) for m in 4, 8, 16, 32, prints
makespans and per-doubling speedups next to the paper's printed values,
and asserts the qualitative shapes:

* makespan drops monotonically as cores double;
* compute-bound kmeans scales best; pagerank scales worst at the top end
  because the reduction-object exchange is a fixed cost;
* the paper's headline ~81% average speedup per doubling is in range.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_figure4
from repro.bench.reporting import render_figure4

from conftest import print_block


def _run_and_check(app: str):
    run = run_figure4(app)
    print_block(render_figure4(run))
    names = [f"({m},{m})" for m in run.ladder]
    makespans = [run.reports[n].makespan for n in names]
    assert all(a > b for a, b in zip(makespans, makespans[1:])), (
        f"{app}: makespan not monotone: {makespans}"
    )
    return run


@pytest.mark.benchmark(group="figure4")
def test_figure4_knn(benchmark):
    run = benchmark.pedantic(lambda: _run_and_check("knn"), rounds=1, iterations=1)
    speedups = run.speedups()
    assert all(s > 30.0 for s in speedups)
    # Early doublings near-ideal (paper: 82.4%, 89.3%).
    assert speedups[0] > 60.0


@pytest.mark.benchmark(group="figure4")
def test_figure4_kmeans(benchmark):
    run = benchmark.pedantic(lambda: _run_and_check("kmeans"), rounds=1, iterations=1)
    speedups = run.speedups()
    # Compute-bound: consistently high (paper: 86-88%).
    assert all(s > 70.0 for s in speedups), speedups


@pytest.mark.benchmark(group="figure4")
def test_figure4_pagerank(benchmark):
    run = benchmark.pedantic(lambda: _run_and_check("pagerank"), rounds=1,
                             iterations=1)
    speedups = run.speedups()
    # Fixed robj-exchange cost: the last doubling pays the most (paper:
    # 85.8 -> 73.2 -> 66.4).
    assert speedups[-1] < speedups[0]
    # Global reduction is scale-invariant (the fixed cost itself).
    names = [f"({m},{m})" for m in run.ladder]
    gr = [run.reports[n].global_reduction for n in names]
    assert max(gr) - min(gr) < 0.2 * max(gr)


@pytest.mark.benchmark(group="figure4")
def test_figure4_headline_average(benchmark):
    """Paper: 'our system scales with an average speedup of 81% every time
    the number of compute resources is doubled.'"""

    def mean_speedup():
        total, count = 0.0, 0
        for app in ("knn", "kmeans", "pagerank"):
            for s in run_figure4(app).speedups():
                total += s
                count += 1
        return total / count

    mean = benchmark.pedantic(mean_speedup, rounds=1, iterations=1)
    print_block(f"Average speedup per core-doubling: {mean:.1f}% (paper: 81%)")
    assert 60.0 < mean < 100.0
