"""Figure 3 — cloud-bursting execution over the five environments.

One bench per sub-figure (knn / kmeans / pagerank). Each regenerates the
full env sweep (env-local, env-cloud, env-50/50, env-33/67, env-17/83) at
the paper's scale, prints the per-cluster processing / retrieval / sync
decomposition, and asserts the paper's qualitative shapes:

* hybrid configurations are slower than env-local (overhead is positive)
  but modestly so;
* the penalty grows as data skews toward S3;
* kmeans (compute-bound) suffers least; knn (retrieval-bound) most.
"""

from __future__ import annotations

import pytest

from repro.bench.configs import HYBRID_ENVS
from repro.bench.experiments import run_figure3
from repro.bench.reporting import render_figure3

from conftest import print_block


def _run_and_check(app: str, max_ratio: float):
    run = run_figure3(app)
    print_block(render_figure3(run))
    base = run.baseline.makespan
    previous = -1e9
    for env in HYBRID_ENVS:
        ratio = run.slowdown_ratio(env)
        assert ratio > -0.05, f"{app}/{env}: hybrid faster than centralized"
        assert ratio < max_ratio, f"{app}/{env}: slowdown {ratio:.2f} out of band"
    # Monotone-ish growth with skew (tolerate one small inversion from jitter).
    r = [run.slowdown_ratio(env) for env in HYBRID_ENVS]
    assert r[2] >= r[0] - 0.02, f"{app}: skew penalty did not grow: {r}"
    return run


@pytest.mark.benchmark(group="figure3")
def test_figure3_knn(benchmark):
    run = benchmark.pedantic(lambda: _run_and_check("knn", max_ratio=0.60),
                             rounds=1, iterations=1)
    # knn is retrieval-dominated in every environment.
    for report in run.reports.values():
        for cluster in report.clusters.values():
            assert cluster.mean_retrieval > cluster.mean_processing


@pytest.mark.benchmark(group="figure3")
def test_figure3_kmeans(benchmark):
    run = benchmark.pedantic(lambda: _run_and_check("kmeans", max_ratio=0.15),
                             rounds=1, iterations=1)
    # kmeans is compute-dominated: slowdown stays small (paper: <= 10.4%).
    for env in HYBRID_ENVS:
        assert run.slowdown_ratio(env) < 0.15
    for report in run.reports.values():
        for cluster in report.clusters.values():
            assert cluster.mean_processing > 5 * cluster.mean_retrieval


@pytest.mark.benchmark(group="figure3")
def test_figure3_pagerank(benchmark):
    run = benchmark.pedantic(lambda: _run_and_check("pagerank", max_ratio=0.45),
                             rounds=1, iterations=1)
    # The ~300 MB reduction object makes hybrid sync visible: global
    # reduction in the tens of seconds (paper: 36.6-42.5 s).
    for env in HYBRID_ENVS:
        assert 10.0 < run.reports[env].global_reduction < 120.0
