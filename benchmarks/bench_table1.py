"""Table I — job assignment per application.

Regenerates the paper's stolen-jobs accounting: for each app and hybrid
environment, how many jobs each cluster processed and how many the local
cluster stole from S3 after exhausting its locally-stored jobs. Asserts
the shapes the paper calls out:

* env-50/50 is balanced with little to no stealing;
* stealing grows monotonically as data skews toward S3;
* EC2 processes more jobs than the local cluster under skew.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import run_figure3, table1_rows
from repro.bench.reporting import render_table1

from conftest import PAPER_APPS, print_block


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark):
    def regenerate():
        return {app: run_figure3(app) for app in PAPER_APPS}

    runs = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print_block(render_table1(runs))

    for app, run in runs.items():
        rows = {r["env"]: r for r in table1_rows(run)}
        # Conservation: every job processed exactly once.
        for row in rows.values():
            assert row["ec2_jobs"] + row["local_jobs"] == 960, (app, row)
        # Stealing monotone in skew; substantial at 17/83.
        stolen = [rows[e]["stolen"] for e in ("env-50/50", "env-33/67",
                                              "env-17/83")]
        assert stolen[0] <= stolen[1] <= stolen[2], (app, stolen)
        assert stolen[2] > 50, (app, stolen)
        assert stolen[0] <= 60, (app, stolen)  # near-balanced at 50/50
        # EC2 takes the majority under the strongest skew (paper: 672/560/544
        # of 960).
        assert rows["env-17/83"]["ec2_jobs"] > rows["env-17/83"]["local_jobs"], app
