"""Extension bench — what does each configuration cost?

The paper motivates cloud bursting with pay-as-you-go economics but never
prices its own runs. This bench does, under the 2011 AWS tariff: for each
application and environment it reports the dollar cost next to the
makespan, exposing the time/money trade-off (env-cloud buys freedom from
the batch queue at the highest bill; hybrids sit in between; skew adds
S3-egress charges on top of the EC2 hours).
"""

from __future__ import annotations

import pytest

from repro.bench.configs import ENV_NAMES, figure3_configs
from repro.bench.cost import AWS_2011, price_run
from repro.bench.experiments import run_figure3
from repro.bench.reporting import render_table

from conftest import PAPER_APPS, print_block


@pytest.mark.benchmark(group="cost")
def test_cost_of_bursting(benchmark):
    def regenerate():
        out = {}
        for app in PAPER_APPS:
            run = run_figure3(app)
            configs = figure3_configs(app)
            out[app] = {
                env: (run.reports[env], price_run(configs[env], run.reports[env]))
                for env in ENV_NAMES
            }
        return out

    priced = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    rows = []
    for app, envs in priced.items():
        for env, (report, cost) in envs.items():
            rows.append(
                (
                    app,
                    env,
                    f"{report.makespan:.0f}s",
                    f"${cost.ec2_compute:.2f}",
                    f"${cost.s3_egress:.2f}",
                    f"${cost.cloud_total:.2f}",
                    f"${cost.total:.2f}",
                )
            )
    print_block(
        "Dollar cost per run (2011 AWS tariff)\n"
        + render_table(
            ("app", "env", "makespan", "EC2", "S3 egress", "cloud bill",
             "total"),
            rows,
        )
    )

    for app, envs in priced.items():
        local_cost = envs["env-local"][1]
        cloud_cost = envs["env-cloud"][1]
        # Centralized local never touches the cloud.
        assert local_cost.cloud_total == 0.0, app
        # env-cloud pays the largest EC2 *compute* bill (most cloud cores).
        assert cloud_cost.ec2_compute >= max(
            c.ec2_compute for _r, c in envs.values()
        ) - 1e-9, app
        # Hybrid runs pay for EC2 *and* (under skew) S3 egress; egress grows
        # with skew because stealing grows with skew.
        egress = [envs[e][1].s3_egress for e in ("env-50/50", "env-33/67",
                                                 "env-17/83")]
        assert egress[0] <= egress[1] <= egress[2], (app, egress)
    # kmeans is the expensive one: longest runs and extra EC2 cores (44/22).
    assert (
        priced["kmeans"]["env-cloud"][1].ec2_compute
        > priced["knn"]["env-cloud"][1].ec2_compute
    )
    # Finding the paper does not report: under heavy skew the hybrid's S3
    # egress charges can exceed the EC2 hours it saves, making env-17/83
    # costlier than all-cloud for the short retrieval-bound app.
    knn = priced["knn"]
    assert knn["env-17/83"][1].cloud_total > knn["env-cloud"][1].cloud_total
