"""Capstone bench — the full reproduction scorecard.

Runs the complete evaluation (Figure 3 + Figure 4 for all three
applications) and grades every claim the paper makes. The printed
scorecard is the one-screen summary of the reproduction; the bench fails
if any claim fails.
"""

from __future__ import annotations

import pytest

from repro.bench.validate import evaluate_claims, render_scorecard

from conftest import print_block


@pytest.mark.benchmark(group="scorecard")
def test_scorecard(benchmark):
    claims = benchmark.pedantic(evaluate_claims, rounds=1, iterations=1)
    print_block(render_scorecard(claims))
    failed = [c for c in claims if not c.passed]
    assert not failed, f"failed claims: {[c.claim_id for c in failed]}"
    # Sanity: the scorecard actually covers the whole evaluation.
    assert len(claims) >= 15
