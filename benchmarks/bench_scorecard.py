"""Capstone bench — the reproduction scorecard and the perf snapshot.

Two artifacts live here:

* **Claim scorecard** (``test_scorecard``) — runs the complete evaluation
  (Figure 3 + Figure 4 for all three applications) and grades every claim
  the paper makes; fails if any claim fails.
* **Perf-regression snapshot** (``main``) — collects the repo's headline
  performance numbers into one machine-readable document: figure-3
  makespans, the chunk cache's second-pass payoff, the sync stack's
  WAN-byte cut, and (informational) micro wall-clock timings. CI runs
  ``python bench_scorecard.py --smoke --json BENCH_scorecard.json --check``
  and fails when any deterministic metric drifts beyond tolerance from
  the committed ``BENCH_baseline.json``. Regenerate the baseline with
  ``--smoke --write-baseline`` after an intentional perf change.

The gated sections (figure3 / cache / sync / zero_copy) are simulator
makespans, byte counts, and data-path read accounting — deterministic
for a given seed, so the default 10 % tolerance only has to absorb
float-summation jitter, not machine speed. The ``micro`` section is wall
clock (including the thread- vs process-slave comparison) and therefore
never gated. The ``service`` section is also wall clock, but carries its
own hard bound inside the collector: the service-wrapped ``repro.run()``
must stay within 2 % of ``run_direct``.
"""

from __future__ import annotations

import argparse
import json
import os
import timeit

import pytest

from repro.bench.configs import env_config
from repro.bench.experiments import run_figure3
from repro.bench.validate import evaluate_claims, render_scorecard
from repro.cache import ChunkCache
from repro.config import (
    CLOUD_SITE,
    LOCAL_SITE,
    ComputeSpec,
    DatasetSpec,
    MiddlewareTuning,
    PlacementSpec,
)
from repro.core.sync import SyncSpec
from repro.apps import make_bundle
from repro.data.dataset import build_dataset
from repro.runtime.driver import CloudBurstingRuntime
from repro.sim.simulation import CloudBurstSimulation
from repro.storage.objectstore import ObjectStore

from conftest import print_block

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "BENCH_baseline.json")

#: Snapshot sections that are wall-clock measurements: recorded for the
#: artifact, never compared against the baseline. (The ``service``
#: section's <2% overhead bound is asserted inside its collector — wall
#: clock is gated at collection time, not against the baseline.)
INFORMATIONAL = ("micro", "service")


@pytest.mark.benchmark(group="scorecard")
def test_scorecard(benchmark):
    claims = benchmark.pedantic(evaluate_claims, rounds=1, iterations=1)
    print_block(render_scorecard(claims))
    failed = [c for c in claims if not c.passed]
    assert not failed, f"failed claims: {[c.claim_id for c in failed]}"
    # Sanity: the scorecard actually covers the whole evaluation.
    assert len(claims) >= 15


# -- snapshot collection -----------------------------------------------------


def collect_figure3(*, scale: float, seed: int) -> dict:
    """Knn makespans per environment — the headline sim numbers."""
    run = run_figure3("knn", scale=scale, seed=seed)
    return {
        env: round(report.makespan, 3) for env, report in run.reports.items()
    }


def collect_cache(*, scale: float, seed: int) -> dict:
    """Two kmeans passes over one chunk cache: pass 2 pays no WAN reads."""
    config = env_config("kmeans", "env-33/67", scale=scale, seed=seed)
    sim = CloudBurstSimulation(config, cache=ChunkCache(1 << 34))
    first = sim.run()
    second = sim.run()
    assert second.cache_hits > 0, "second pass never hit the cache"
    assert second.makespan < first.makespan, (
        "cached second pass should beat the cold first pass"
    )
    return {
        "pass1_makespan": round(first.makespan, 3),
        "pass2_makespan": round(second.makespan, 3),
        "pass2_hits": second.cache_hits,
        "pass2_misses": second.cache_misses,
    }


def collect_sync(*, units: int, iterations: int, seed: int) -> dict:
    """Iterative pagerank through delta+zlib: cumulative WAN-byte cut.

    Stealing is disabled so each cluster's reduction object covers a fixed
    job set — the byte counts then only wobble with float-summation order,
    well inside the comparison tolerance.
    """
    bundle = make_bundle("pagerank", units, seed=seed)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=units * rb,
        num_files=4,
        chunk_bytes=(units // 16) * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(0.5), bundle.schema, bundle.block_fn, stores
    )
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
        tuning=MiddlewareTuning(
            units_per_group=max(units // 16, 256), allow_stealing=False
        ),
        sync=SyncSpec(encoding="delta", compress="zlib"),
        seed=seed,
    )
    wire = dense = 0
    for _ in range(iterations):
        result = runtime.run()
        t = result.telemetry
        wire += t.sync_bytes_sent
        dense += t.sync_bytes_sent + t.sync_bytes_saved
        bundle.app.update(result.value)
    assert wire > 0 and dense > wire
    return {
        "iterations": iterations,
        "wire_bytes": wire,
        "dense_bytes": dense,
        "cut": round(dense / wire, 2),
    }


def collect_zero_copy(*, units: int, seed: int) -> dict:
    """Data-path read accounting — deterministic, gated.

    Two probes: a no-steal runtime run (every read same-site, so the
    whole pass must be served as views), and a serial two-pass cached
    run (pass 2's cloud chunks come back as cache hits). Both are exact
    integer counts for a given config.
    """
    import repro

    spec = DatasetSpec(
        total_bytes=units * 8,
        num_files=4,
        chunk_bytes=(units // 16) * 8,
        record_bytes=8,
    )
    hot = repro.run(
        "histogram", spec,
        repro.RunConfig(
            mode="runtime", seed=seed,
            tuning=MiddlewareTuning(allow_stealing=False),
        ),
    ).telemetry
    assert hot.bytes_copied == 0, "hot read loop copied bytes"
    assert hot.zero_copy_reads == hot.total_jobs
    cached = repro.run(
        "histogram", spec,
        repro.RunConfig(mode="serial", seed=seed, iterations=1,
                        cache=repro.CacheOptions(bytes=1 << 30)),
    ).telemetry
    return {
        "hot_loop_reads": hot.zero_copy_reads,
        "hot_loop_bytes_copied": hot.bytes_copied,
        "serial_view_reads": cached.zero_copy_reads,
        "serial_bytes_copied": cached.bytes_copied,
    }


def collect_service(*, units: int, seed: int) -> dict:
    """Single-tenant service overhead — wall clock, gated at collection.

    ``repro.run()`` is now ``JobService.submit(...).result()`` on an
    inline service; its admission/queue/handle machinery must be noise
    next to a real run. The gate isolates the two terms so machine
    jitter in the multi-millisecond engine run cannot mask (or fake) a
    regression in the microsecond-scale ceremony:

    * ``ceremony_ms`` — the full wrapped path with a no-op executor:
      service construction, admission, fair-share dispatch, handle
      resolution, drain, shutdown. Exactly what ``run()`` adds.
    * ``direct_ms`` — a real serial histogram run.

    The hard bound asserts ceremony < 2 % of the real run. Paired
    direct-vs-wrapped wall timings are recorded alongside for the
    artifact (informational — at ~2 % the pairing is dominated by
    scheduler noise on a shared CI box).
    """
    import repro
    from repro.service import JobService

    spec = DatasetSpec(
        total_bytes=units * 8,
        num_files=4,
        chunk_bytes=(units // 16) * 8,
        record_bytes=8,
    )
    config = repro.RunConfig(mode="serial", seed=seed)
    direct = lambda: repro.run_direct("histogram", spec, config)  # noqa: E731
    wrapped = lambda: repro.run("histogram", spec, config)  # noqa: E731

    def ceremony():
        with JobService(workers=0, executor=lambda *a: None) as service:
            service.submit("histogram", spec, config, validate=False).result()

    for _ in range(3):  # warm caches before any timed pass
        direct()
        wrapped()

    reps = 7
    t_ceremony = min(
        timeit.timeit(ceremony, number=20) / 20 for _ in range(reps)
    )
    direct_times, wrapped_times = [], []
    for i in range(reps):
        pair = [("direct", direct), ("wrapped", wrapped)]
        if i % 2:
            pair.reverse()
        for label, fn in pair:
            t = timeit.timeit(fn, number=3) / 3
            (direct_times if label == "direct" else wrapped_times).append(t)
    t_direct = min(direct_times)
    t_wrapped = min(wrapped_times)
    overhead = t_ceremony / t_direct
    assert overhead < 0.02, (
        f"service ceremony costs {overhead * 100:.2f}% of a direct run "
        f"({t_ceremony * 1e6:.0f}us over {t_direct * 1e3:.2f}ms); "
        f"bound is 2%"
    )
    return {
        "ceremony_us": round(t_ceremony * 1e6, 2),
        "direct_ms": round(t_direct * 1e3, 3),
        "wrapped_ms": round(t_wrapped * 1e3, 3),
        "overhead_pct": round(overhead * 100, 3),
    }


def collect_micro(*, seed: int) -> dict:
    """Wall-clock micro timings — informational, never gated."""
    from bench_micro import run_substrate_bench
    from bench_obs import drive_scheduler

    from repro.obs import EventLog

    reps = 5
    scheduler_s = min(
        timeit.timeit(drive_scheduler, number=1) for _ in range(reps)
    )
    log = EventLog()
    log.start()
    emit_n = 20_000
    emit_s = min(
        timeit.timeit(
            lambda: log.emit("job_done", worker=0, job_id=1), number=emit_n
        )
        for _ in range(reps)
    )
    substrate = run_substrate_bench(
        smoke=True, workers=2, units=4096, slave_mode="both", seed=seed
    )
    return {
        "scheduler_960_jobs_ms": round(scheduler_s * 1e3, 3),
        "emit_us": round(emit_s / emit_n * 1e6, 3),
        "thread_slaves_ms": round(substrate["thread"] * 1e3, 3),
        "process_slaves_ms": round(substrate["process"] * 1e3, 3),
        "process_speedup": round(substrate["speedup"], 3),
    }


def collect_snapshot(*, smoke: bool, seed: int) -> dict:
    """The full perf snapshot. ``smoke`` shrinks every workload; the
    committed baseline is a smoke snapshot, so CI compares like for like
    (the ``config`` section is checked for equality before any metric)."""
    scale = 0.05 if smoke else 1.0
    sync_units, sync_iters = (8192, 2) if smoke else (65536, 8)
    zero_copy_units = 2048 if smoke else 16384
    # Big enough that one serial run is ~15ms — the per-call service
    # machinery is ~0.1ms, so anything smaller can't resolve a 2% bound.
    service_units = 65536 if smoke else 262144
    return {
        "config": {
            "smoke": smoke,
            "seed": seed,
            "scale": scale,
            "sync_units": sync_units,
            "sync_iterations": sync_iters,
            "zero_copy_units": zero_copy_units,
            "service_units": service_units,
        },
        "figure3": collect_figure3(scale=scale, seed=seed),
        "cache": collect_cache(scale=scale, seed=seed),
        "sync": collect_sync(
            units=sync_units, iterations=sync_iters, seed=seed
        ),
        "zero_copy": collect_zero_copy(units=zero_copy_units, seed=seed),
        "service": collect_service(units=service_units, seed=seed),
        "micro": collect_micro(seed=seed),
    }


# -- baseline comparison -----------------------------------------------------


def flatten(doc: dict, prefix: str = "") -> dict:
    out = {}
    for key, value in doc.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            out.update(flatten(value, f"{path}."))
        else:
            out[path] = value
    return out


def compare(current: dict, baseline: dict, *, tolerance: float = 0.10) -> list[str]:
    """Drift report: one line per metric outside tolerance; empty = pass.

    Informational sections are skipped; the ``config`` section must match
    exactly (comparing a smoke snapshot against a full-scale baseline is a
    harness bug, not a regression).
    """
    problems = []
    if current.get("config") != baseline.get("config"):
        problems.append(
            f"snapshot config mismatch: {current.get('config')} vs "
            f"baseline {baseline.get('config')}"
        )
        return problems
    cur = flatten(current)
    for key, base_value in sorted(flatten(baseline).items()):
        section = key.split(".", 1)[0]
        if section in INFORMATIONAL or section == "config":
            continue
        value = cur.get(key)
        if value is None:
            problems.append(f"{key}: missing from current snapshot")
            continue
        if not isinstance(base_value, (int, float)) or isinstance(base_value, bool):
            if value != base_value:
                problems.append(f"{key}: {value!r} != baseline {base_value!r}")
            continue
        drift = abs(value - base_value) / max(abs(base_value), 1e-9)
        if drift > tolerance:
            problems.append(
                f"{key}: {value} vs baseline {base_value} "
                f"({drift * 100:.1f}% drift > {tolerance * 100:.0f}%)"
            )
    return problems


def render_snapshot(doc: dict) -> str:
    lines = []
    for section, values in doc.items():
        if section == "config":
            continue
        tag = " (informational)" if section in INFORMATIONAL else ""
        lines.append(f"{section}{tag}:")
        for key, value in values.items():
            lines.append(f"  {key:<22} {value}")
    return "\n".join(lines)


# -- unit tests for the comparison harness (cheap, no workloads) -------------


def test_compare_passes_identical_snapshots():
    doc = {"config": {"smoke": True}, "figure3": {"env-local": 100.0}}
    assert compare(doc, doc) == []


def test_compare_flags_drift_beyond_tolerance():
    base = {"config": {"smoke": True}, "sync": {"wire_bytes": 1000}}
    worse = {"config": {"smoke": True}, "sync": {"wire_bytes": 1200}}
    assert compare(worse, base, tolerance=0.10)
    assert not compare(worse, base, tolerance=0.25)


def test_compare_skips_informational_and_checks_config():
    base = {"config": {"smoke": True}, "micro": {"emit_us": 1.0}}
    fast = {"config": {"smoke": True}, "micro": {"emit_us": 99.0}}
    assert compare(fast, base) == []
    full = {"config": {"smoke": False}, "micro": {"emit_us": 1.0}}
    assert compare(full, base)  # config mismatch is always a failure


def test_compare_reports_missing_metric():
    base = {"config": {}, "cache": {"pass2_hits": 320}}
    assert compare({"config": {}, "cache": {}}, base)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized workloads (the committed baseline is a smoke run)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the snapshot to PATH as JSON"
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=BASELINE_PATH,
        help="baseline snapshot to compare against (default: committed)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when any gated metric drifts beyond tolerance",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="overwrite the baseline with this run's snapshot",
    )
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--seed", type=int, default=2011)
    args = parser.parse_args(argv)

    snapshot = collect_snapshot(smoke=args.smoke, seed=args.seed)
    print(render_snapshot(snapshot))

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if args.write_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
        print(f"wrote baseline {args.baseline}")
        return 0
    if args.check:
        if not os.path.isfile(args.baseline):
            print(f"error: no baseline at {args.baseline} "
                  f"(run with --write-baseline first)")
            return 1
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = compare(snapshot, baseline, tolerance=args.tolerance)
        if problems:
            print(f"\nFAIL: {len(problems)} metric(s) drifted from baseline:")
            for line in problems:
                print(f"  {line}")
            return 1
        print(f"\nok: every gated metric within {args.tolerance * 100:.0f}% "
              f"of the committed baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
