#!/usr/bin/env python3
"""Quickstart: run a Generalized Reduction application with cloud bursting.

Two ways to use the library, both shown below:

1. the **executable runtime** — real data, real threads, functional
   results (here: k-nearest neighbors over a dataset split between a
   "campus" store and an S3-like object store);
2. the **simulator** — the paper's testbed at full 120 GB scale, modeled,
   to predict performance of any configuration in under a second.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CLOUD_SITE,
    LOCAL_SITE,
    CloudBurstingRuntime,
    ComputeSpec,
    DatasetSpec,
    PlacementSpec,
    env_config,
    make_bundle,
    simulate,
)
from repro.data.dataset import build_dataset
from repro.storage.objectstore import ObjectStore


def run_executable_runtime() -> None:
    print("=== 1. Executable runtime: knn over a hybrid data placement ===")
    # An application bundle: the app, its record schema, and a synthetic
    # data generator sized to 16k reference points.
    bundle = make_bundle("knn", 16_384, dims=4, k=10)
    record = bundle.schema.record_bytes

    # Dataset shape: 8 files x 4 chunks; half the files stay "local", the
    # rest go to the cloud object store.
    spec = DatasetSpec(
        total_bytes=16_384 * record,
        num_files=8,
        chunk_bytes=512 * record,
        record_bytes=record,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(local_fraction=0.5), bundle.schema, bundle.block_fn,
        stores,
    )

    # Burst: two local cores plus two cloud cores.
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2)
    )
    result = runtime.run()

    print(f"10 nearest neighbors of the query point {bundle.app.query}:")
    for distance, point_id in result.value[:5]:
        print(f"  point {point_id:6d}  squared distance {distance:.5f}")
    print("  ...")
    for name, cluster in result.telemetry.clusters.items():
        print(
            f"{name}: {cluster.jobs} jobs ({cluster.stolen} stolen), "
            f"processing {cluster.mean_processing * 1000:.1f} ms/slave, "
            f"retrieval {cluster.mean_retrieval * 1000:.1f} ms/slave"
        )
    print(f"wall time: {result.telemetry.wall_seconds:.3f} s")


def run_simulator() -> None:
    print()
    print("=== 2. Simulator: the paper's env-33/67 at full 120 GB scale ===")
    report = simulate(env_config("knn", "env-33/67"))
    print(f"makespan: {report.makespan:.1f} simulated seconds")
    print(f"global reduction: {report.global_reduction * 1000:.1f} ms")
    for name, cluster in report.clusters.items():
        print(
            f"{name}: {cluster.jobs_processed} jobs "
            f"({cluster.jobs_stolen} stolen), "
            f"processing {cluster.mean_processing:.1f} s, "
            f"retrieval {cluster.mean_retrieval:.1f} s, "
            f"sync {cluster.sync:.1f} s"
        )


if __name__ == "__main__":
    run_executable_runtime()
    run_simulator()
