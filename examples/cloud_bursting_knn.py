#!/usr/bin/env python3
"""Scenario: is cloud bursting worth it for a retrieval-bound workload?

Reproduces the paper's Figure 3(a) decision flow for k-nearest neighbors:
a lab has 120 GB of reference data and a queue-clogged campus cluster.
How much does it cost to split the data and the compute with AWS, at
various data skews?

Prints text "stacked bars" (P = processing, R = retrieval, S = sync) like
the paper's figure, plus the Table-II-style overhead summary.

Run:  python examples/cloud_bursting_knn.py
"""

from __future__ import annotations

from repro.bench.configs import ENV_NAMES
from repro.bench.experiments import run_figure3
from repro.bench.reporting import render_bar, render_figure3


def main() -> None:
    print("Simulating the five environments of Figure 3(a) (knn, 120 GB)...")
    run = run_figure3("knn")

    print()
    print("Stacked bars per cluster (P=processing, R=retrieval, S=sync):")
    unit = max(r.makespan for r in run.reports.values()) / 60.0
    for env in ENV_NAMES:
        report = run.reports[env]
        for cluster in report.clusters.values():
            label = f"{env}/{cluster.site}"
            print(
                render_bar(
                    label,
                    {
                        "processing": cluster.mean_processing,
                        "retrieval": cluster.mean_retrieval,
                        "sync": cluster.sync,
                    },
                    unit_per_char=unit,
                )
            )
    print()
    print(render_figure3(run))

    print()
    baseline = run.baseline.makespan
    print(f"Centralized baseline (env-local): {baseline:.1f} s")
    for env in ("env-50/50", "env-33/67", "env-17/83"):
        report = run.reports[env]
        ratio = run.slowdown_ratio(env) * 100
        stolen = sum(c.jobs_stolen for c in report.clusters.values())
        print(
            f"{env}: {report.makespan:.1f} s (+{ratio:.1f}%), "
            f"{stolen} jobs stolen across the WAN"
        )
    print()
    print(
        "Verdict: for knn the bursting penalty tracks how much data must "
        "cross the WAN — modest at 50/50, noticeable at 17/83 — matching "
        "the paper's observation that retrieval dominates the slowdown."
    )


if __name__ == "__main__":
    main()
