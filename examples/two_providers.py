#!/usr/bin/env python3
"""Scenario: bursting across two cloud providers.

Section II of the paper: "our solution will also be applicable if the
data and/or processing power is spread across two different cloud
providers." A lab's dataset has grown across its campus storage node,
an AWS-like provider, and a second, cheaper-but-slower provider; compute
is drawn from all three. The head scheduler needs no changes — pooling
load balancing and minimum-contention stealing just see three clusters.

Run:  python examples/two_providers.py
"""

from __future__ import annotations

from repro.bench.configs import paper_dataset
from repro.cluster.variability import EC2_VARIABILITY
from repro.sim.multisite import (
    CrossPath,
    MultiSiteConfig,
    MultiSiteSimulation,
    SiteSpec,
)
from repro.sim.storagemodel import StorePath
from repro.units import MB


def main() -> None:
    campus_disk = StorePath(name="campus-disk", bandwidth=600 * MB,
                            per_connection_cap=18 * MB, request_latency=0.0005,
                            seek_time=0.008, random_penalty=1.6)
    provider_a = StorePath(name="providerA", bandwidth=700 * MB,
                           per_connection_cap=5 * MB, request_latency=0.045)
    provider_b = StorePath(name="providerB", bandwidth=500 * MB,
                           per_connection_cap=4 * MB, request_latency=0.055)
    wan = StorePath(name="wan", bandwidth=120 * MB, per_connection_cap=3 * MB,
                    request_latency=0.065, file_service_cap=64 * MB)

    sites = (
        SiteSpec(name="campus", cores=16, data_files=10, storage=campus_disk),
        SiteSpec(name="provider-a", cores=12, data_files=12, storage=provider_a,
                 compute_slowdown=1.1, variability=EC2_VARIABILITY,
                 intra_bandwidth=400 * MB),
        SiteSpec(name="provider-b", cores=12, data_files=10, storage=provider_b,
                 compute_slowdown=1.25, variability=EC2_VARIABILITY,
                 intra_bandwidth=300 * MB),
    )
    names = [s.name for s in sites]
    config = MultiSiteConfig(
        name="two-providers",
        app="pagerank",
        dataset=paper_dataset("pagerank"),
        sites=sites,
        cross_paths=tuple(
            CrossPath(src=a, dst=b, path=wan)
            for a in names for b in names if a != b
        ),
        head_site="campus",
    )

    print("Simulating PageRank over campus + two cloud providers (120 GB)...")
    report = MultiSiteSimulation(config).run()
    print(f"makespan: {report.makespan:.1f} s")
    print(f"global reduction (two ~300 MB objects over the WAN): "
          f"{report.global_reduction:.1f} s")
    print()
    print(f"{'site':>12s} {'cores':>5s} {'jobs':>5s} {'stolen':>6s} "
          f"{'proc':>7s} {'retr':>7s} {'sync':>7s}")
    for cluster in report.clusters.values():
        print(
            f"{cluster.site:>12s} {cluster.cores:5d} "
            f"{cluster.jobs_processed:5d} {cluster.jobs_stolen:6d} "
            f"{cluster.mean_processing:6.1f}s {cluster.mean_retrieval:6.1f}s "
            f"{cluster.sync:6.1f}s"
        )
    print()
    print(
        "Note the global reduction: with TWO remote clusters, two ~300 MB "
        "reduction objects cross the WAN — the paper's fixed-cost warning "
        "compounds with every additional provider."
    )


if __name__ == "__main__":
    main()
