#!/usr/bin/env python3
"""Scenario: iterative k-means clustering over a hybrid data placement.

The paper evaluates one Lloyd iteration (the middleware's unit of
execution); real clustering runs iterate to convergence. This example
drives the executable runtime through the iterative driver: each pass is
a full cloud-bursting execution (head/master/slave, work stealing, global
reduction), and the resulting centroids feed the next pass.

Run:  python examples/kmeans_iterative.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CLOUD_SITE,
    LOCAL_SITE,
    CloudBurstingRuntime,
    ComputeSpec,
    DatasetSpec,
    PlacementSpec,
    make_bundle,
    run_iterative,
)
from repro.data.dataset import build_dataset
from repro.storage.objectstore import ObjectStore

POINTS = 32_768
TRUE_CENTERS = 6


def main() -> None:
    bundle = make_bundle(
        "kmeans", POINTS, dims=2, k=TRUE_CENTERS, centers=TRUE_CENTERS
    )
    record = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=POINTS * record,
        num_files=8,
        chunk_bytes=1024 * record,
        record_bytes=record,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    # Most of the data lives in the cloud: the campus keeps 25%.
    index = build_dataset(
        spec, PlacementSpec(local_fraction=0.25), bundle.schema, bundle.block_fn,
        stores,
    )
    runtime = CloudBurstingRuntime(
        bundle.app, index, stores, ComputeSpec(local_cores=2, cloud_cores=2)
    )

    print(f"Clustering {POINTS} points into {TRUE_CENTERS} clusters,")
    print("25% of data on campus, 75% in the object store, 2+2 cores.")
    print()
    history = []

    def update(centroids: np.ndarray) -> None:
        history.append(np.asarray(centroids).copy())
        bundle.app.update(centroids)

    final, passes = run_iterative(
        runtime, update, iterations=40, tolerance=1e-4
    )
    print(f"Converged after {passes} cloud-bursting passes.")
    print("Final centroids:")
    for i, c in enumerate(np.asarray(final)):
        print(f"  cluster {i}: ({c[0]:+.4f}, {c[1]:+.4f})")
    if len(history) >= 2:
        moves = [
            float(np.max(np.abs(a - b))) for a, b in zip(history, history[1:])
        ]
        print()
        print("Max centroid movement per pass:")
        for i, move in enumerate(moves[:10], start=2):
            print(f"  pass {i:2d}: {move:.6f}")


if __name__ == "__main__":
    main()
