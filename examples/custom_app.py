#!/usr/bin/env python3
"""Writing your own Generalized Reduction application.

The paper's API asks the developer for three things: a reduction object,
a local reduction, and (optionally) a global reduction. This example
implements **streaming linear regression** — fit y = a*x + b over records
scattered across two sites — by accumulating the sufficient statistics
(n, Σx, Σy, Σxx, Σxy) in an ArrayReduction. The middleware handles chunk
retrieval, work stealing, and merging; the app never sees the
distribution.

Run:  python examples/custom_app.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CLOUD_SITE,
    LOCAL_SITE,
    CloudBurstingRuntime,
    ComputeSpec,
    DatasetSpec,
    GeneralizedReductionApp,
    PlacementSpec,
)
from repro.core.reduction import ArrayReduction
from repro.data.dataset import build_dataset
from repro.data.records import RecordSchema
from repro.storage.objectstore import ObjectStore

TRUE_A, TRUE_B = 2.5, -0.7

#: one record = (x, y) as float64
XY_SCHEMA = RecordSchema(name="xy", dtype=np.dtype(np.float64), columns=2)


class LinearRegressionApp(GeneralizedReductionApp):
    """Least-squares fit via sufficient statistics.

    Reduction object: [n, sum_x, sum_y, sum_xx, sum_xy]. Merging is plain
    addition, so the result is independent of how the runtime partitions
    the data — the API's core contract.
    """

    name = "linreg"

    def create_reduction_object(self) -> ArrayReduction:
        return ArrayReduction((5,), dtype=np.float64)

    def local_reduction(self, robj, units: np.ndarray) -> None:
        x = units[:, 0]
        y = units[:, 1]
        robj.data += np.array(
            [len(x), x.sum(), y.sum(), (x * x).sum(), (x * y).sum()]
        )

    def finalize(self, robj) -> tuple[float, float]:
        n, sx, sy, sxx, sxy = robj.value()
        denom = n * sxx - sx * sx
        a = (n * sxy - sx * sy) / denom
        b = (sy - a * sx) / n
        return float(a), float(b)

    def decode_chunk(self, raw: bytes) -> np.ndarray:
        return XY_SCHEMA.decode(raw)


def noisy_line_block(start: int, count: int, block_index: int) -> np.ndarray:
    rng = np.random.default_rng(1000 + start)
    x = rng.uniform(-3.0, 3.0, size=count)
    y = TRUE_A * x + TRUE_B + rng.normal(0.0, 0.3, size=count)
    return np.stack([x, y], axis=1)


def main() -> None:
    points = 65_536
    spec = DatasetSpec(
        total_bytes=points * XY_SCHEMA.record_bytes,
        num_files=8,
        chunk_bytes=2048 * XY_SCHEMA.record_bytes,
        record_bytes=XY_SCHEMA.record_bytes,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(local_fraction=0.5), XY_SCHEMA, noisy_line_block,
        stores,
    )
    runtime = CloudBurstingRuntime(
        LinearRegressionApp(), index, stores,
        ComputeSpec(local_cores=2, cloud_cores=2),
    )
    result = runtime.run()
    a, b = result.value
    print(f"Fitted  y = {a:.4f} x + {b:.4f}")
    print(f"Truth   y = {TRUE_A:.4f} x + {TRUE_B:.4f}")
    assert abs(a - TRUE_A) < 0.02 and abs(b - TRUE_B) < 0.02
    print()
    for name, cluster in result.telemetry.clusters.items():
        print(f"{name}: {cluster.jobs} chunks processed, {cluster.stolen} stolen")
    print("(the app never mentioned sites, chunks, or transfers)")


if __name__ == "__main__":
    main()
