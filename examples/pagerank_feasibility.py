#!/usr/bin/env python3
"""Scenario: when does cloud bursting stop paying off?

Section IV-B's warning, explored: PageRank's reduction object is a dense
per-page accumulator (~300 MB for the paper's 50M-page graph), and every
cloud-bursting run must push it across the WAN during global reduction.
This example runs the paper's pagerank configuration, then sweeps the
reduction-object size to find the break-even point against centralized
processing — exactly the feasibility analysis the paper sketches in prose.

Run:  python examples/pagerank_feasibility.py
"""

from __future__ import annotations

from repro.bench.configs import env_config
from repro.bench.experiments import run_figure3, run_robj_ablation
from repro.sim.simulation import simulate
from repro.units import MB, fmt_seconds


def main() -> None:
    print("PageRank at the paper's scale (50M pages, ~1e9 edges, 120 GB):")
    run = run_figure3("pagerank")
    base = run.baseline
    hybrid = run.reports["env-50/50"]
    print(f"  env-local : {base.makespan:7.1f} s")
    print(
        f"  env-50/50 : {hybrid.makespan:7.1f} s "
        f"(global reduction {hybrid.global_reduction:.1f} s of that)"
    )
    print()

    print("Sweeping the reduction-object size (env-50/50, pagerank profile):")
    sweep = run_robj_ablation("pagerank", "env-50/50",
                              robj_mb=(1, 10, 30, 100, 300, 600, 1000, 2000))
    print(f"  {'robj':>8s}  {'global red.':>12s}  {'makespan':>9s}  {'vs local':>9s}")
    baseline = base.makespan
    for mb, report in sweep.items():
        delta = (report.makespan - baseline) / baseline * 100.0
        print(
            f"  {mb:5d} MB  {fmt_seconds(report.global_reduction):>12s}"
            f"  {report.makespan:8.1f}s  {delta:+8.1f}%"
        )
    print()
    print(
        "Reading the sweep: below ~100 MB the object transfer hides inside "
        "the run; around the paper's 300 MB it costs tens of seconds; by "
        "1-2 GB the WAN push dominates and centralized processing wins — "
        "the paper's 'may not be feasible' regime, quantified."
    )


if __name__ == "__main__":
    main()
