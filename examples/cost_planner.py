#!/usr/bin/env python3
"""Scenario: provisioning under a deadline and a budget.

The operations question behind the paper's motivation: "my campus queue
is full and I need this analysis by tonight — what do I rent?" This
example composes the simulator with the cost model to answer it: it
simulates every environment for an application, prices each under the
2011 AWS tariff, and picks (a) the cheapest configuration that meets a
deadline and (b) the fastest configuration under a budget.

Run:  python examples/cost_planner.py
"""

from __future__ import annotations

from repro.bench.configs import ENV_NAMES, figure3_configs
from repro.bench.cost import price_run
from repro.bench.experiments import run_figure3

APP = "pagerank"
DEADLINE_S = 900.0
BUDGET = 5.00

#: The lab owns 16 dedicated cores; anything beyond queues behind other
#: users. The paper's Section I cites a wait:execution ratio near 4 on
#: Jaguar (2007) — we charge a flat queue wait when a configuration needs
#: the shared half of the campus cluster.
DEDICATED_LOCAL_CORES = 16
QUEUE_WAIT_S = 1800.0


def main() -> None:
    print(f"Planning a {APP} run: deadline {DEADLINE_S:.0f}s, "
          f"cloud budget ${BUDGET:.2f}")
    print(f"(only {DEDICATED_LOCAL_CORES} local cores are dedicated; using "
          f"more queues ~{QUEUE_WAIT_S:.0f}s behind other users)")
    print()
    run = run_figure3(APP)
    configs = figure3_configs(APP)

    options = []
    for env in ENV_NAMES:
        report = run.reports[env]
        cost = price_run(configs[env], report)
        wait = (
            QUEUE_WAIT_S
            if configs[env].compute.local_cores > DEDICATED_LOCAL_CORES
            else 0.0
        )
        options.append((env, report.makespan + wait, cost))

    print(f"{'env':>10s} {'completion':>10s} {'cloud bill':>10s} {'total':>8s}")
    for env, completion, cost in options:
        print(f"{env:>10s} {completion:9.1f}s ${cost.cloud_total:8.2f} "
              f"${cost.total:7.2f}")
    print()

    feasible = [(env, t, c) for env, t, c in options if t <= DEADLINE_S]
    if feasible:
        env, t, c = min(feasible, key=lambda o: o[2].total)
        print(f"Cheapest config meeting the {DEADLINE_S:.0f}s deadline: "
              f"{env} ({t:.0f}s, ${c.total:.2f})")
    else:
        print(f"No configuration meets the {DEADLINE_S:.0f}s deadline.")

    affordable = [(env, t, c) for env, t, c in options
                  if c.cloud_total <= BUDGET]
    if affordable:
        env, t, c = min(affordable, key=lambda o: o[1])
        print(f"Fastest config under the ${BUDGET:.2f} cloud budget: "
              f"{env} ({t:.0f}s, cloud bill ${c.cloud_total:.2f})")
    else:
        print(f"Nothing fits a ${BUDGET:.2f} cloud budget except env-local.")
    print()
    print(
        "The planner captures the paper's economics: the campus alone is "
        "free but queue-bound; all-cloud is fastest to *start* but "
        "priciest; the balanced hybrid buys most of the speed for half "
        "the EC2 bill — unless skew adds S3-egress charges."
    )


if __name__ == "__main__":
    main()
