#!/usr/bin/env python3
"""Scenario: where does the time actually go? Tracing a bursting run.

Attaches a trace recorder to a simulated env-33/67 knn run, then renders
a per-worker Gantt chart and a utilization table — the observability a
middleware operator needs to diagnose load imbalance and WAN stalls.

Run:  python examples/trace_timeline.py
"""

from __future__ import annotations

from repro.bench.configs import env_config
from repro.sim.simulation import CloudBurstSimulation
from repro.sim.trace import TraceRecorder, render_gantt, utilization


def main() -> None:
    trace = TraceRecorder()
    # Scale down to 1/20 of the paper's data so the chart stays readable
    # (the job structure — 960 chunks, 32 files — is unchanged).
    config = env_config("knn", "env-33/67", scale=0.05)
    report = CloudBurstSimulation(config, trace=trace).run()

    print(f"env-33/67 knn (scaled): makespan {report.makespan:.1f} s, "
          f"{len(trace)} trace events")
    print()
    print(render_gantt(trace, report.makespan, width=70))
    print()

    util = utilization(trace, report.makespan)
    local_workers = [w for w in util if w < 16]
    cloud_workers = [w for w in util if w >= 16]

    def mean(workers, key):
        return sum(util[w][key] for w in workers) / len(workers)

    print("Mean utilization by cluster:")
    for label, crew in (("local", local_workers), ("cloud", cloud_workers)):
        print(
            f"  {label:6s} retrieval {mean(crew, 'retrieval') * 100:5.1f}%  "
            f"processing {mean(crew, 'processing') * 100:5.1f}%  "
            f"idle {mean(crew, 'idle') * 100:5.1f}%"
        )
    print()
    print(
        "Reading the chart: local workers (w000-w015) stream the campus "
        "disk, then switch to slow WAN fetches once their files run out — "
        "the long 'r' stretches late in the run are the stolen S3 chunks."
    )


if __name__ == "__main__":
    main()
