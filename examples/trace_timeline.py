#!/usr/bin/env python3
"""Scenario: where does the time actually go? Tracing a bursting run.

Attaches a trace recorder to a simulated env-33/67 knn run, then renders
a per-worker Gantt chart and a utilization table — the observability a
middleware operator needs to diagnose load imbalance and WAN stalls.

With ``--runtime`` the same event log, Gantt chart, and utilization
table come from a real threaded :class:`CloudBurstingRuntime` run over
an in-memory dataset instead of the simulator — the observability layer
is substrate-agnostic, so the two views read identically.

Run:  python examples/trace_timeline.py [--runtime]
"""

from __future__ import annotations

import argparse

from repro.bench.configs import env_config
from repro.sim.simulation import CloudBurstSimulation
from repro.sim.trace import TraceRecorder, render_gantt, utilization


def simulated_trace():
    trace = TraceRecorder()
    # Scale down to 1/20 of the paper's data so the chart stays readable
    # (the job structure — 960 chunks, 32 files — is unchanged).
    config = env_config("knn", "env-33/67", scale=0.05)
    report = CloudBurstSimulation(config, trace=trace).run()
    header = (f"env-33/67 knn (scaled): makespan {report.makespan:.1f} s, "
              f"{len(trace)} trace events")
    local_cores = 16
    return trace, report.makespan, header, local_cores


def runtime_trace():
    from repro.apps import make_bundle
    from repro.config import (
        CLOUD_SITE,
        LOCAL_SITE,
        ComputeSpec,
        DatasetSpec,
        PlacementSpec,
    )
    from repro.data.dataset import build_dataset
    from repro.obs import EventLog
    from repro.runtime.driver import CloudBurstingRuntime
    from repro.storage.objectstore import ObjectStore

    units, files, chunks_per_file = 4096, 4, 8
    bundle = make_bundle("knn", units, k=8)
    rb = bundle.schema.record_bytes
    spec = DatasetSpec(
        total_bytes=units * rb,
        num_files=files,
        chunk_bytes=units // (files * chunks_per_file) * rb,
        record_bytes=rb,
    )
    stores = {LOCAL_SITE: ObjectStore(), CLOUD_SITE: ObjectStore()}
    index = build_dataset(
        spec, PlacementSpec(local_fraction=1 / 3), bundle.schema,
        bundle.block_fn, stores,
    )
    trace = EventLog()
    compute = ComputeSpec(local_cores=2, cloud_cores=4)
    CloudBurstingRuntime(
        bundle.app, index, stores, compute, trace=trace
    ).run()
    makespan = trace.makespan()
    header = (f"runtime knn, 1/3 of {units} units local: wall "
              f"{makespan:.3f} s, {len(trace)} trace events")
    return trace, makespan, header, compute.local_cores


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--runtime", action="store_true",
        help="trace a real threaded run instead of the simulator",
    )
    args = parser.parse_args(argv)

    if args.runtime:
        trace, makespan, header, local_cores = runtime_trace()
    else:
        trace, makespan, header, local_cores = simulated_trace()

    print(header)
    print()
    print(render_gantt(trace, makespan, width=70))
    print()

    util = utilization(trace, makespan)
    local_workers = [w for w in util if w < local_cores]
    cloud_workers = [w for w in util if w >= local_cores]

    def mean(workers, key):
        return sum(util[w][key] for w in workers) / len(workers)

    print("Mean utilization by cluster:")
    for label, crew in (("local", local_workers), ("cloud", cloud_workers)):
        print(
            f"  {label:6s} retrieval {mean(crew, 'retrieval') * 100:5.1f}%  "
            f"processing {mean(crew, 'processing') * 100:5.1f}%  "
            f"idle {mean(crew, 'idle') * 100:5.1f}%"
        )
    print()
    if args.runtime:
        print(
            "Reading the chart: the same Gantt view, but timed with a wall "
            "clock over real threads — cloud workers (the later rows) chew "
            "through the 2/3 of the data placed on S3 while the two local "
            "cores steal what they can over the simulated-latency link."
        )
    else:
        print(
            "Reading the chart: local workers (w000-w015) stream the campus "
            "disk, then switch to slow WAN fetches once their files run out — "
            "the long 'r' stretches late in the run are the stolen S3 chunks."
        )


if __name__ == "__main__":
    main()
